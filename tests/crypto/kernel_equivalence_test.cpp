// Randomized equivalence tests for the scalar-multiplication kernels.
//
// Every optimized kernel (wNAF mul, constant-time mul_ct, comb mul_base,
// Straus mul_double / mul_double_base, Straus/Pippenger mul_multi_base) is
// checked against the retained naive reference kernels (mul_naive,
// mul_base_ladder) on random inputs and on the algebraic edge cases:
// k = 0, k = 1, k = l - 1, the identity point, and the small-order torsion
// points. Also pins down the Barrett scalar reduction with wide-input
// identities.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/ed25519.hpp"
#include "crypto/sha512.hpp"

namespace icc::crypto {
namespace {

// Deterministic "random" scalar stream: H(domain || counter).
Sc25519 fuzz_scalar(uint64_t i) {
  Sha512 h;
  h.update("kernel-equivalence-scalar");
  uint8_t le[8];
  for (int j = 0; j < 8; ++j) le[j] = static_cast<uint8_t>(i >> (8 * j));
  h.update(BytesView(le, 8));
  return Sc25519::from_bytes_wide(h.digest().data());
}

Point fuzz_point(uint64_t i) {
  Sha512 h;
  h.update("kernel-equivalence-point");
  uint8_t le[8];
  for (int j = 0; j < 8; ++j) le[j] = static_cast<uint8_t>(i >> (8 * j));
  h.update(BytesView(le, 8));
  return Point::mul_base_ladder(Sc25519::from_bytes_wide(h.digest().data()));
}

std::vector<Point> small_order_points() {
  // All valid small-order encodings (see ed25519_adversarial_test.cpp).
  const char* hexes[] = {
      "0100000000000000000000000000000000000000000000000000000000000000",  // id
      "ecffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f",  // ord 2
      "0000000000000000000000000000000000000000000000000000000000000000",  // ord 4
      "0000000000000000000000000000000000000000000000000000000000000080",
      "c7176a703d4dd84fba3c0b760d10670f2a2053fa2c39ccc64ec7fd7792ac037a",  // ord 8
      "c7176a703d4dd84fba3c0b760d10670f2a2053fa2c39ccc64ec7fd7792ac03fa",
      "26e8958fc2b227b045c3f489f2ef98f0d5dfac05d3c63339b13802886d53fc05",
      "26e8958fc2b227b045c3f489f2ef98f0d5dfac05d3c63339b13802886d53fc85",
  };
  std::vector<Point> pts;
  for (const char* hex : hexes) {
    uint8_t enc[32];
    for (int i = 0; i < 32; ++i) {
      auto nib = [&](char c) -> uint8_t {
        return c <= '9' ? static_cast<uint8_t>(c - '0')
                        : static_cast<uint8_t>(c - 'a' + 10);
      };
      enc[i] = static_cast<uint8_t>(nib(hex[2 * i]) << 4 | nib(hex[2 * i + 1]));
    }
    auto p = Point::decompress(enc);
    EXPECT_TRUE(p.has_value());
    if (p) pts.push_back(*p);
  }
  return pts;
}

TEST(KernelEquivalence, VariableBaseKernelsMatchNaive) {
  // The headline fuzz loop: 1000 random (point, scalar) pairs through every
  // variable-base kernel.
  for (uint64_t i = 0; i < 1000; ++i) {
    Point p = fuzz_point(i);
    Sc25519 k = fuzz_scalar(i);
    Point expected = p.mul_naive(k);
    EXPECT_EQ(p.mul(k), expected) << "wNAF mismatch at iteration " << i;
    EXPECT_EQ(p.mul_ct(k), expected) << "mul_ct mismatch at iteration " << i;
  }
}

TEST(KernelEquivalence, FixedBaseKernelsMatch) {
  for (uint64_t i = 0; i < 300; ++i) {
    Sc25519 k = fuzz_scalar(1000 + i);
    Point expected = Point::mul_base_ladder(k);
    EXPECT_EQ(Point::mul_base(k), expected) << "comb mismatch at iteration " << i;
    EXPECT_EQ(Point::base().mul(k), expected);
  }
}

TEST(KernelEquivalence, EdgeScalars) {
  const Sc25519 zero = Sc25519::zero();
  const Sc25519 one = Sc25519::one();
  const Sc25519 l_minus_1 = one.negate();  // l - 1 == -1 mod l
  Point p = fuzz_point(42);

  for (const Sc25519& k : {zero, one, l_minus_1}) {
    Point expected = p.mul_naive(k);
    EXPECT_EQ(p.mul(k), expected);
    EXPECT_EQ(p.mul_ct(k), expected);
    EXPECT_EQ(Point::mul_base(k), Point::mul_base_ladder(k));
  }
  EXPECT_TRUE(p.mul(zero).is_identity());
  EXPECT_EQ(p.mul(one), p);
  EXPECT_EQ(p.mul(l_minus_1), p.negate());

  // Identity point in, identity out, for every scalar.
  Point id;
  EXPECT_TRUE(id.mul(fuzz_scalar(7)).is_identity());
  EXPECT_TRUE(id.mul_ct(fuzz_scalar(7)).is_identity());
}

TEST(KernelEquivalence, SmallOrderPoints) {
  // Torsion points exercise the completeness of the unified formulas; the
  // optimized kernels must agree with the naive ladder on them bit for bit.
  for (const Point& p : small_order_points()) {
    for (uint64_t i = 0; i < 16; ++i) {
      Sc25519 k = i < 8 ? Sc25519::from_u64(i) : fuzz_scalar(2000 + i);
      Point expected = p.mul_naive(k);
      EXPECT_EQ(p.mul(k), expected);
      EXPECT_EQ(p.mul_ct(k), expected);
    }
  }
}

TEST(KernelEquivalence, DoubleScalarKernels) {
  for (uint64_t i = 0; i < 100; ++i) {
    Sc25519 s = fuzz_scalar(3000 + i);
    Sc25519 k = fuzz_scalar(4000 + i);
    Point a = fuzz_point(3000 + i);
    Point b = fuzz_point(4000 + i);
    EXPECT_EQ(Point::mul_double_base(s, k, a),
              Point::mul_base_ladder(s) + a.mul_naive(k));
    EXPECT_EQ(Point::mul_double(s, a, k, b), a.mul_naive(s) + b.mul_naive(k));
  }
  // Degenerate scalar combinations.
  Point a = fuzz_point(1);
  Sc25519 z = Sc25519::zero(), m1 = Sc25519::one().negate();
  EXPECT_TRUE(Point::mul_double_base(z, z, a).is_identity());
  EXPECT_EQ(Point::mul_double_base(z, m1, a), a.negate());
  EXPECT_EQ(Point::mul_double(m1, a, z, a), a.negate());
}

TEST(KernelEquivalence, SplitVerifyKernel) {
  // mul_verify_scaled returns v (s B - k A - R) for some secret v coprime
  // to l. Its contract is the cofactored predicate: 8 * result == identity
  // exactly when 8 * (s B - k A - R) == identity.
  for (uint64_t i = 0; i < 100; ++i) {
    Sc25519 s = fuzz_scalar(5000 + i);
    Sc25519 k = fuzz_scalar(6000 + i);
    Point a = fuzz_point(5000 + i);
    // Valid equation: R := s B - k A.
    Point r = Point::mul_base_ladder(s) - a.mul_naive(k);
    EXPECT_TRUE(Point::mul_verify_scaled(s, k, a, r).mul_cofactor().is_identity())
        << "valid equation rejected at iteration " << i;
    // The cofactored predicate tolerates torsion offsets of R.
    Point r_tor = r + small_order_points()[4];  // + order-8 point
    EXPECT_TRUE(Point::mul_verify_scaled(s, k, a, r_tor).mul_cofactor().is_identity());
    // Any prime-order-subgroup perturbation must be caught.
    Point r_bad = r + fuzz_point(6000 + i);
    EXPECT_FALSE(Point::mul_verify_scaled(s, k, a, r_bad).mul_cofactor().is_identity())
        << "perturbed equation accepted at iteration " << i;
  }
  // Degenerate scalars: k = 0 (split hits u = 0, v = 1) and s = 0.
  Point a = fuzz_point(77);
  Sc25519 z = Sc25519::zero(), s = fuzz_scalar(77);
  Point r = Point::mul_base_ladder(s);
  EXPECT_TRUE(Point::mul_verify_scaled(s, z, a, r).mul_cofactor().is_identity());
  EXPECT_TRUE(
      Point::mul_verify_scaled(z, z, a, Point()).mul_cofactor().is_identity());
  EXPECT_FALSE(Point::mul_verify_scaled(z, z, a, r).mul_cofactor().is_identity());
}

TEST(KernelEquivalence, MultiScalarStraus) {
  // Sizes below the Pippenger threshold, including empty and singleton.
  for (size_t m : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{20}}) {
    Sc25519 s = fuzz_scalar(5000 + m);
    std::vector<Sc25519> ks;
    std::vector<Point> ps;
    Point expected = Point::mul_base_ladder(s);
    for (size_t i = 0; i < m; ++i) {
      ks.push_back(fuzz_scalar(6000 + 100 * m + i));
      ps.push_back(fuzz_point(6000 + 100 * m + i));
      expected = expected + ps.back().mul_naive(ks.back());
    }
    EXPECT_EQ(Point::mul_multi_base(s, ks, ps), expected) << "m = " << m;
  }
}

TEST(KernelEquivalence, MultiScalarWithEdgeScalarsAndTorsion) {
  Sc25519 s = fuzz_scalar(7000);
  std::vector<Sc25519> ks = {Sc25519::zero(), Sc25519::one().negate(), fuzz_scalar(7001)};
  std::vector<Point> ps = {fuzz_point(7000), fuzz_point(7001), small_order_points()[4]};
  Point expected = Point::mul_base_ladder(s);
  for (size_t i = 0; i < ks.size(); ++i) expected = expected + ps[i].mul_naive(ks[i]);
  EXPECT_EQ(Point::mul_multi_base(s, ks, ps), expected);
}

TEST(KernelEquivalence, MultiScalarPippenger) {
  // Past the threshold (192 points) the bucket method takes over.
  constexpr size_t kM = 200;
  Sc25519 s = fuzz_scalar(8000);
  std::vector<Sc25519> ks;
  std::vector<Point> ps;
  Point expected = Point::mul_base_ladder(s);
  for (size_t i = 0; i < kM; ++i) {
    ks.push_back(fuzz_scalar(9000 + i));
    ps.push_back(fuzz_point(9000 + i));
    expected = expected + ps.back().mul_naive(ks.back());
  }
  EXPECT_EQ(Point::mul_multi_base(s, ks, ps), expected);
}

TEST(BarrettReduction, WideInputIdentities) {
  // 2^512 - 1 = (2^256 - 1) * 2^256 + (2^256 - 1): the widest possible
  // input to from_bytes_wide must be consistent with narrow reductions and
  // scalar arithmetic (both independently tested).
  uint8_t ff32[32], ff64[64];
  std::memset(ff32, 0xff, sizeof(ff32));
  std::memset(ff64, 0xff, sizeof(ff64));
  Sc25519 a = Sc25519::from_bytes_mod_l(ff32);      // 2^256 - 1 mod l
  Sc25519 two256 = a + Sc25519::one();              // 2^256 mod l
  EXPECT_EQ(Sc25519::from_bytes_wide(ff64), a * two256 + a);

  // l itself reduces to zero; l - 1 and l + 1 straddle it.
  uint8_t lb[32];
  Sc25519 l_minus_1 = Sc25519::one().negate();
  l_minus_1.to_bytes(lb);
  EXPECT_TRUE(Sc25519::is_canonical(lb));
  lb[0] += 1;  // l (no carry: l - 1 ends in 0xec)
  EXPECT_FALSE(Sc25519::is_canonical(lb));
  EXPECT_TRUE(Sc25519::from_bytes_mod_l(lb).is_zero());
  lb[0] += 1;  // l + 1
  EXPECT_FALSE(Sc25519::is_canonical(lb));
  EXPECT_EQ(Sc25519::from_bytes_mod_l(lb), Sc25519::one());
}

}  // namespace
}  // namespace icc::crypto
