#include "crypto/multisig.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace icc::crypto {
namespace {

struct Setup {
  std::vector<Ed25519KeyPair> keypairs;
  std::vector<std::array<uint8_t, 32>> pks;
  Bytes message = str_bytes("notarize block 12");

  std::vector<MultiSigShare> sign_all() const {
    std::vector<MultiSigShare> shares;
    for (size_t i = 0; i < keypairs.size(); ++i) {
      shares.push_back({static_cast<uint32_t>(i), ed25519_sign(keypairs[i], message)});
    }
    return shares;
  }
};

Setup make_setup(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  Setup s;
  for (size_t i = 0; i < n; ++i) {
    Bytes sd = rng.bytes(32);
    s.keypairs.push_back(ed25519_keypair(sd.data()));
    s.pks.push_back(s.keypairs.back().public_key);
  }
  return s;
}

TEST(MultiSigTest, CombineAndVerify) {
  auto s = make_setup(4, 1);
  auto shares = s.sign_all();
  auto ms = multisig_combine(shares, 3, 4);
  ASSERT_TRUE(ms.has_value());
  EXPECT_TRUE(multisig_verify(*ms, s.pks, s.message, 3));
}

TEST(MultiSigTest, ExactThreshold) {
  auto s = make_setup(4, 2);
  auto shares = s.sign_all();
  shares.resize(3);
  auto ms = multisig_combine(shares, 3, 4);
  ASSERT_TRUE(ms.has_value());
  EXPECT_EQ(ms->signer_count(), 3u);
  EXPECT_TRUE(multisig_verify(*ms, s.pks, s.message, 3));
}

TEST(MultiSigTest, TooFewSignersFails) {
  auto s = make_setup(4, 3);
  auto shares = s.sign_all();
  shares.resize(2);
  EXPECT_FALSE(multisig_combine(shares, 3, 4).has_value());
}

TEST(MultiSigTest, DuplicateSignersDontCount) {
  auto s = make_setup(4, 4);
  auto shares = s.sign_all();
  std::vector<MultiSigShare> dup = {shares[0], shares[0], shares[0]};
  EXPECT_FALSE(multisig_combine(dup, 3, 4).has_value());
}

TEST(MultiSigTest, WrongMessageRejected) {
  auto s = make_setup(4, 5);
  auto ms = multisig_combine(s.sign_all(), 3, 4);
  ASSERT_TRUE(ms.has_value());
  EXPECT_FALSE(multisig_verify(*ms, s.pks, str_bytes("other"), 3));
}

TEST(MultiSigTest, ForgedSignatureRejected) {
  auto s = make_setup(4, 6);
  auto shares = s.sign_all();
  shares[1].signature[0] ^= 1;
  auto ms = multisig_combine(shares, 4, 4);
  ASSERT_TRUE(ms.has_value());
  EXPECT_FALSE(multisig_verify(*ms, s.pks, s.message, 4));
}

TEST(MultiSigTest, BitmapInflationRejected) {
  // Mark an extra signer in the bitmap without providing a signature.
  auto s = make_setup(4, 7);
  auto shares = s.sign_all();
  shares.resize(3);
  auto ms = multisig_combine(shares, 3, 4);
  ASSERT_TRUE(ms.has_value());
  ms->signers[3] = true;  // now bitmap count != signature count
  EXPECT_FALSE(multisig_verify(*ms, s.pks, s.message, 3));
}

TEST(MultiSigTest, SerializationRoundTrip) {
  auto s = make_setup(5, 8);
  auto shares = s.sign_all();
  shares.erase(shares.begin() + 1);  // signers {0,2,3,4}
  auto ms = multisig_combine(shares, 4, 5);
  ASSERT_TRUE(ms.has_value());
  Bytes ser = ms->serialize();
  auto back = MultiSig::deserialize(ser);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->signers, ms->signers);
  EXPECT_TRUE(multisig_verify(*back, s.pks, s.message, 4));
}

TEST(MultiSigTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(MultiSig::deserialize(Bytes{}).has_value());
  EXPECT_FALSE(MultiSig::deserialize(Bytes(3, 0xff)).has_value());
  // Absurd n.
  Bytes huge;
  put_u32le(huge, 0xffffffffu);
  EXPECT_FALSE(MultiSig::deserialize(huge).has_value());
}

TEST(MultiSigTest, OutOfRangeSignerIgnoredInCombine) {
  auto s = make_setup(4, 9);
  auto shares = s.sign_all();
  shares[0].signer = 99;  // invalid index
  auto ms = multisig_combine(shares, 3, 4);
  ASSERT_TRUE(ms.has_value());
  EXPECT_FALSE(ms->signers.size() > 4);
  EXPECT_TRUE(multisig_verify(*ms, s.pks, s.message, 3));
}

}  // namespace
}  // namespace icc::crypto
