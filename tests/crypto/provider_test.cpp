// Behavioural contract of CryptoProvider, run against BOTH implementations.
// Every protocol-visible property the consensus layer relies on must hold
// identically for the real Ed25519 provider and the fast simulation oracle.
#include "crypto/provider.hpp"

#include <gtest/gtest.h>

namespace icc::crypto {
namespace {

enum class Kind { kReal, kFast };

struct ProviderCase {
  Kind kind;
  size_t n;
  size_t t;
};

std::unique_ptr<CryptoProvider> make(const ProviderCase& c, uint64_t seed = 77) {
  return c.kind == Kind::kReal ? make_real_provider(c.n, c.t, seed)
                               : make_fast_provider(c.n, c.t, seed);
}

class ProviderTest : public ::testing::TestWithParam<ProviderCase> {};

TEST_P(ProviderTest, Parameters) {
  auto p = make(GetParam());
  EXPECT_EQ(p->n(), GetParam().n);
  EXPECT_EQ(p->t(), GetParam().t);
  EXPECT_EQ(p->quorum(), GetParam().n - GetParam().t);
  EXPECT_EQ(p->beacon_threshold(), GetParam().t + 1);
}

TEST_P(ProviderTest, SignVerify) {
  auto p = make(GetParam());
  Bytes msg = str_bytes("authenticate block");
  Bytes sig = p->sign(0, msg);
  EXPECT_EQ(sig.size(), p->wire_sizes().signature);
  EXPECT_TRUE(p->verify(0, msg, sig));
  EXPECT_FALSE(p->verify(1, msg, sig));                   // wrong signer
  EXPECT_FALSE(p->verify(0, str_bytes("other"), sig));    // wrong message
  Bytes bad = sig;
  bad[0] ^= 1;
  EXPECT_FALSE(p->verify(0, msg, bad));                   // tampered
}

TEST_P(ProviderTest, ThresholdShareVerify) {
  auto p = make(GetParam());
  Bytes msg = str_bytes("notarization payload");
  Bytes share = p->threshold_sign_share(Scheme::kNotary, 2, msg);
  EXPECT_EQ(share.size(), p->wire_sizes().threshold_share);
  EXPECT_TRUE(p->threshold_verify_share(Scheme::kNotary, 2, msg, share));
  EXPECT_FALSE(p->threshold_verify_share(Scheme::kNotary, 1, msg, share));
  // Cross-scheme replay must fail: a notarization share is not a
  // finalization share on the same message.
  EXPECT_FALSE(p->threshold_verify_share(Scheme::kFinal, 2, msg, share));
}

TEST_P(ProviderTest, ThresholdCombineAndVerify) {
  auto p = make(GetParam());
  Bytes msg = str_bytes("block hash xyz");
  std::vector<std::pair<PartyIndex, Bytes>> shares;
  for (PartyIndex i = 0; i < p->quorum(); ++i)
    shares.emplace_back(i, p->threshold_sign_share(Scheme::kNotary, i, msg));
  Bytes agg = p->threshold_combine(Scheme::kNotary, msg, shares);
  ASSERT_FALSE(agg.empty());
  EXPECT_EQ(agg.size(), p->wire_sizes().threshold_agg);
  EXPECT_TRUE(p->threshold_verify(Scheme::kNotary, msg, agg));
  EXPECT_FALSE(p->threshold_verify(Scheme::kFinal, msg, agg));
  EXPECT_FALSE(p->threshold_verify(Scheme::kNotary, str_bytes("other"), agg));
}

TEST_P(ProviderTest, ThresholdCombineRequiresQuorum) {
  auto p = make(GetParam());
  Bytes msg = str_bytes("m");
  std::vector<std::pair<PartyIndex, Bytes>> shares;
  for (PartyIndex i = 0; i + 1 < p->quorum(); ++i)
    shares.emplace_back(i, p->threshold_sign_share(Scheme::kNotary, i, msg));
  EXPECT_TRUE(p->threshold_combine(Scheme::kNotary, msg, shares).empty());
}

TEST_P(ProviderTest, ThresholdCombineIgnoresDuplicatesAndJunk) {
  auto p = make(GetParam());
  Bytes msg = str_bytes("m");
  std::vector<std::pair<PartyIndex, Bytes>> shares;
  Bytes s0 = p->threshold_sign_share(Scheme::kNotary, 0, msg);
  for (size_t i = 0; i < p->quorum(); ++i) shares.emplace_back(0, s0);  // duplicates
  shares.emplace_back(1, Bytes(p->wire_sizes().threshold_share, 0xee));  // junk
  EXPECT_TRUE(p->threshold_combine(Scheme::kNotary, msg, shares).empty());
}

TEST_P(ProviderTest, BeaconShareFlow) {
  auto p = make(GetParam());
  Bytes msg = str_bytes("beacon prev value");
  std::vector<std::pair<PartyIndex, Bytes>> shares;
  for (PartyIndex i = 0; i < p->beacon_threshold(); ++i) {
    Bytes s = p->beacon_sign_share(i, msg);
    EXPECT_EQ(s.size(), p->wire_sizes().beacon_share);
    EXPECT_TRUE(p->beacon_verify_share(i, msg, s));
    EXPECT_FALSE(p->beacon_verify_share(i, str_bytes("x"), s));
    shares.emplace_back(i, s);
  }
  Bytes value = p->beacon_combine(msg, shares);
  ASSERT_FALSE(value.empty());
  EXPECT_EQ(value.size(), p->wire_sizes().beacon_value);
  EXPECT_TRUE(p->beacon_verify(msg, value));
  EXPECT_FALSE(p->beacon_verify(str_bytes("x"), value));
}

TEST_P(ProviderTest, BeaconIsUniqueAcrossQuorums) {
  auto p = make(GetParam());
  if (p->beacon_threshold() >= p->n()) GTEST_SKIP() << "needs spare shares";
  Bytes msg = str_bytes("round 9");
  std::vector<std::pair<PartyIndex, Bytes>> q1, q2;
  for (PartyIndex i = 0; i < p->beacon_threshold(); ++i)
    q1.emplace_back(i, p->beacon_sign_share(i, msg));
  for (PartyIndex i = 1; i <= p->beacon_threshold(); ++i)
    q2.emplace_back(i, p->beacon_sign_share(i, msg));
  Bytes v1 = p->beacon_combine(msg, q1);
  Bytes v2 = p->beacon_combine(msg, q2);
  ASSERT_FALSE(v1.empty());
  EXPECT_EQ(v1, v2);
}

TEST_P(ProviderTest, BeaconCombineRequiresThreshold) {
  auto p = make(GetParam());
  if (p->beacon_threshold() < 2) GTEST_SKIP() << "t = 0 combines from one share";
  Bytes msg = str_bytes("m");
  std::vector<std::pair<PartyIndex, Bytes>> shares;
  for (PartyIndex i = 0; i + 1 < p->beacon_threshold(); ++i)
    shares.emplace_back(i, p->beacon_sign_share(i, msg));
  EXPECT_TRUE(p->beacon_combine(msg, shares).empty());
}

TEST_P(ProviderTest, DeterministicAcrossInstancesWithSameSeed) {
  auto p1 = make(GetParam(), 123);
  auto p2 = make(GetParam(), 123);
  Bytes msg = str_bytes("m");
  EXPECT_EQ(p1->sign(0, msg), p2->sign(0, msg));
  // Cross-verification also works: same seed -> same keys.
  EXPECT_TRUE(p2->verify(0, msg, p1->sign(0, msg)));
}

TEST_P(ProviderTest, DifferentSeedsGiveIndependentKeys) {
  auto p1 = make(GetParam(), 1);
  auto p2 = make(GetParam(), 2);
  Bytes msg = str_bytes("m");
  EXPECT_FALSE(p2->verify(0, msg, p1->sign(0, msg)));
}

INSTANTIATE_TEST_SUITE_P(
    Providers, ProviderTest,
    ::testing::Values(ProviderCase{Kind::kReal, 4, 1}, ProviderCase{Kind::kReal, 7, 2},
                      ProviderCase{Kind::kFast, 4, 1}, ProviderCase{Kind::kFast, 7, 2},
                      ProviderCase{Kind::kFast, 13, 4}, ProviderCase{Kind::kFast, 40, 13}),
    [](const auto& info) {
      const auto& c = info.param;
      return std::string(c.kind == Kind::kReal ? "Real" : "Fast") + "_n" +
             std::to_string(c.n) + "t" + std::to_string(c.t);
    });

}  // namespace
}  // namespace icc::crypto
