#include "crypto/sc25519.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace icc::crypto {
namespace {

Sc25519 random_sc(Xoshiro256& rng) {
  Bytes b = rng.bytes(64);
  return Sc25519::from_bytes_wide(b);
}

// l, little-endian.
const char* kLHex = "edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010";

TEST(Sc25519Test, LReducesToZero) {
  Bytes l = from_hex(kLHex);
  EXPECT_TRUE(Sc25519::from_bytes_mod_l(l.data()).is_zero());
}

TEST(Sc25519Test, LMinusOnePlusOneIsZero) {
  Bytes l = from_hex(kLHex);
  l[0] -= 1;  // l - 1 (low byte 0xed -> 0xec, no borrow)
  Sc25519 lm1 = Sc25519::from_bytes_mod_l(l.data());
  EXPECT_TRUE((lm1 + Sc25519::one()).is_zero());
}

TEST(Sc25519Test, AddSubRoundTrip) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    Sc25519 a = random_sc(rng), b = random_sc(rng);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_TRUE((a - a).is_zero());
  }
}

TEST(Sc25519Test, MulProperties) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 50; ++i) {
    Sc25519 a = random_sc(rng), b = random_sc(rng), c = random_sc(rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(Sc25519Test, MulSmallValues) {
  EXPECT_EQ(Sc25519::from_u64(6), Sc25519::from_u64(2) * Sc25519::from_u64(3));
  EXPECT_TRUE((Sc25519::from_u64(5) * Sc25519::zero()).is_zero());
}

TEST(Sc25519Test, InvertIsInverse) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) {
    Sc25519 a = random_sc(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.invert(), Sc25519::one());
  }
}

TEST(Sc25519Test, InvertSmall) {
  // 2 * inv(2) == 1
  EXPECT_EQ(Sc25519::from_u64(2) * Sc25519::from_u64(2).invert(), Sc25519::one());
}

TEST(Sc25519Test, NegateAddsToZero) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 50; ++i) {
    Sc25519 a = random_sc(rng);
    EXPECT_TRUE((a + a.negate()).is_zero());
  }
}

TEST(Sc25519Test, BytesRoundTrip) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    Sc25519 a = random_sc(rng);
    Bytes b = a.to_bytes();
    EXPECT_EQ(Sc25519::from_bytes_mod_l(b.data()), a);
  }
}

TEST(Sc25519Test, WideReductionMatchesModularArithmetic) {
  // (2^256) mod l  ==  (2^128 mod l)^2 mod l
  Bytes wide(64, 0);
  wide[32] = 1;  // 2^256
  Sc25519 a = Sc25519::from_bytes_wide(wide);

  Bytes half(32, 0);
  // 2^128 < l? No: l ~ 2^252, so 2^128 < l; representable directly.
  half[16] = 1;
  Sc25519 b = Sc25519::from_bytes_mod_l(half.data());
  EXPECT_EQ(a, b * b);
}

TEST(Sc25519Test, FromU64Identity) {
  EXPECT_EQ(Sc25519::from_u64(0), Sc25519::zero());
  EXPECT_EQ(Sc25519::from_u64(1), Sc25519::one());
  EXPECT_EQ(Sc25519::from_u64(7).words()[0], 7u);
}

}  // namespace
}  // namespace icc::crypto
