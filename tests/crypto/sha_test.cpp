#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "support/bytes.hpp"

namespace icc::crypto {
namespace {

std::string hex256(std::string_view msg) {
  auto d = Sha256::hash(msg);
  return to_hex(BytesView(d.data(), d.size()));
}

std::string hex512(std::string_view msg) {
  auto d = Sha512::hash(BytesView(reinterpret_cast<const uint8_t*>(msg.data()), msg.size()));
  return to_hex(BytesView(d.data(), d.size()));
}

// FIPS 180-4 / NIST CAVP vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(hex256(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(hex256("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(hex256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  auto d = h.digest();
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog, repeatedly";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.digest(), Sha256::hash(msg)) << "split at " << split;
  }
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edges.
  for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Sha256 a, b;
    a.update(msg);
    b.update(msg.substr(0, len / 2));
    b.update(msg.substr(len / 2));
    EXPECT_EQ(a.digest(), b.digest()) << "len " << len;
  }
}

TEST(Sha512Test, EmptyString) {
  EXPECT_EQ(hex512(""),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512Test, Abc) {
  EXPECT_EQ(hex512("abc"),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512Test, TwoBlockMessage) {
  EXPECT_EQ(hex512("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                   "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512Test, IncrementalMatchesOneShot) {
  Bytes msg;
  for (int i = 0; i < 300; ++i) msg.push_back(static_cast<uint8_t>(i));
  for (size_t split : {0u, 1u, 111u, 112u, 127u, 128u, 129u, 255u, 300u}) {
    Sha512 h;
    h.update(BytesView(msg.data(), split));
    h.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.digest(), Sha512::hash(msg)) << "split at " << split;
  }
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash("a"), Sha256::hash("b"));
  EXPECT_NE(Sha256::hash(""), Sha256::hash(std::string(1, '\0')));
}

}  // namespace
}  // namespace icc::crypto
