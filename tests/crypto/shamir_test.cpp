#include "crypto/shamir.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace icc::crypto {
namespace {

// Property sweep over (t, n) configurations relevant to BFT: n = 3t + 1 and
// some asymmetric shapes.
class ShamirParamTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(ShamirParamTest, ReconstructFromThresholdShares) {
  auto [t, n] = GetParam();
  Xoshiro256 rng(100 + t * 31 + n);
  Sc25519 secret = random_scalar(rng);
  auto shares = shamir_share(secret, t, n, rng);
  ASSERT_EQ(shares.size(), n);

  // First t+1 shares.
  std::vector<ShamirShare> subset(shares.begin(), shares.begin() + t + 1);
  EXPECT_EQ(shamir_reconstruct(subset), secret);

  // Last t+1 shares.
  std::vector<ShamirShare> tail(shares.end() - (t + 1), shares.end());
  EXPECT_EQ(shamir_reconstruct(tail), secret);
}

TEST_P(ShamirParamTest, ReconstructFromMoreThanThreshold) {
  auto [t, n] = GetParam();
  Xoshiro256 rng(200 + t * 31 + n);
  Sc25519 secret = random_scalar(rng);
  auto shares = shamir_share(secret, t, n, rng);
  EXPECT_EQ(shamir_reconstruct(shares), secret);
}

TEST_P(ShamirParamTest, ShuffledSubsetReconstructs) {
  auto [t, n] = GetParam();
  Xoshiro256 rng(300 + t * 31 + n);
  Sc25519 secret = random_scalar(rng);
  auto shares = shamir_share(secret, t, n, rng);
  std::shuffle(shares.begin(), shares.end(), rng);
  std::vector<ShamirShare> subset(shares.begin(), shares.begin() + t + 1);
  EXPECT_EQ(shamir_reconstruct(subset), secret);
}

INSTANTIATE_TEST_SUITE_P(Configs, ShamirParamTest,
                         ::testing::Values(std::pair<size_t, size_t>{1, 4},
                                           std::pair<size_t, size_t>{2, 7},
                                           std::pair<size_t, size_t>{4, 13},
                                           std::pair<size_t, size_t>{13, 40},
                                           std::pair<size_t, size_t>{1, 2},
                                           std::pair<size_t, size_t>{0, 1},
                                           std::pair<size_t, size_t>{3, 10}));

TEST(ShamirTest, ZeroThresholdMeansConstantPolynomial) {
  Xoshiro256 rng(1);
  Sc25519 secret = random_scalar(rng);
  auto shares = shamir_share(secret, 0, 5, rng);
  for (const auto& s : shares) EXPECT_EQ(s.value, secret);
}

TEST(ShamirTest, TSharesDoNotDetermineSecret) {
  // With only t shares, many candidate secrets are consistent; check that
  // interpolating t shares (as if threshold were t-1) yields a wrong value.
  Xoshiro256 rng(2);
  Sc25519 secret = random_scalar(rng);
  auto shares = shamir_share(secret, 2, 5, rng);
  std::vector<ShamirShare> two(shares.begin(), shares.begin() + 2);
  EXPECT_NE(shamir_reconstruct(two), secret);
}

TEST(ShamirTest, RejectsBadParameters) {
  Xoshiro256 rng(3);
  EXPECT_THROW(shamir_share(Sc25519::one(), 3, 3, rng), std::invalid_argument);
}

TEST(ShamirTest, LagrangeCoefficientsSumToOneOnConstant) {
  // For the constant polynomial f(x) = c every weighted sum is c, which
  // means the Lagrange coefficients sum to 1.
  std::vector<uint32_t> points = {1, 4, 7, 9};
  Sc25519 sum;
  for (size_t j = 0; j < points.size(); ++j) sum = sum + lagrange_at_zero(points, j);
  EXPECT_EQ(sum, Sc25519::one());
}

TEST(ShamirTest, LagrangeRejectsDuplicatePoints) {
  std::vector<uint32_t> points = {1, 1};
  EXPECT_THROW(lagrange_at_zero(points, 0), std::invalid_argument);
}

}  // namespace
}  // namespace icc::crypto
