// Unit tests of the pull-gossip layer: advert/request/serve flow, jittered
// source selection, retry on unresponsive holders, dedup and pruning.
#include "gossip/gossip.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace icc::gossip {
namespace {

using types::Message;

/// A process exposing a GossipLayer and recording artifact deliveries.
class GossipProcess : public sim::Process {
 public:
  explicit GossipProcess(sim::PartyIndex self, const GossipConfig& cfg = {})
      : gossip_(cfg, self) {}

  void start(sim::Context&) override {}
  void receive(sim::Context& ctx, sim::PartyIndex from, BytesView bytes) override {
    auto msg = types::parse_message(bytes);
    if (!msg) {
      // Raw artifact body (not a structured message) — treat as delivery.
      Bytes raw(bytes.begin(), bytes.end());
      if (gossip_.store(raw, 1)) delivered.push_back(raw);
      return;
    }
    if (auto* advert = std::get_if<types::AdvertMsg>(&*msg)) {
      gossip_.on_advert(ctx, from, *advert);
    } else if (auto* request = std::get_if<types::RequestMsg>(&*msg)) {
      requests_served += gossip_.has(request->artifact_id) ? 1 : 0;
      gossip_.on_request(ctx, from, *request);
    } else {
      Bytes raw(bytes.begin(), bytes.end());
      if (gossip_.store(raw, 1)) delivered.push_back(raw);
    }
  }

  GossipLayer& gossip() { return gossip_; }
  std::vector<Bytes> delivered;
  int requests_served = 0;

 private:
  GossipLayer gossip_;
};

struct Fixture {
  sim::Simulation sim;
  std::vector<GossipProcess*> procs;

  explicit Fixture(size_t n, GossipConfig cfg = {})
      : sim(n, std::make_unique<sim::FixedDelay>(sim::msec(10)), 7) {
    for (size_t i = 0; i < n; ++i) {
      auto p = std::make_unique<GossipProcess>(static_cast<sim::PartyIndex>(i), cfg);
      procs.push_back(p.get());
      sim.network().set_process(static_cast<sim::PartyIndex>(i), std::move(p));
    }
    sim.start();
  }
};

Bytes make_artifact(size_t size) {
  // A valid serialized message so peers can parse it (a proposal works).
  types::ProposalMsg pm;
  pm.block.round = 1;
  pm.block.proposer = 0;
  pm.block.parent_hash = types::root_hash();
  pm.block.payload.assign(size, 0xcd);
  pm.authenticator = Bytes(64, 1);
  return types::serialize_message(Message{pm});
}

TEST(GossipTest, AdvertPullDeliver) {
  Fixture f(4);
  Bytes artifact = make_artifact(50000);
  f.sim.engine().schedule_at(0, [&] {
    sim::Context ctx(f.sim.network(), 0);
    f.procs[0]->gossip().store(artifact, 1);
    ctx.broadcast(types::serialize_message(
        Message{f.procs[0]->gossip().advert_for(artifact, 1)}));
  });
  f.sim.run_until(sim::seconds(2));
  for (size_t i = 1; i < 4; ++i) {
    ASSERT_EQ(f.procs[i]->delivered.size(), 1u) << "party " << i;
    EXPECT_EQ(f.procs[i]->delivered[0], artifact);
  }
}

TEST(GossipTest, DuplicateAdvertsCauseOneRequest) {
  Fixture f(3);
  Bytes artifact = make_artifact(10000);
  f.sim.engine().schedule_at(0, [&] {
    sim::Context ctx(f.sim.network(), 0);
    f.procs[0]->gossip().store(artifact, 1);
    Bytes advert = types::serialize_message(
        Message{f.procs[0]->gossip().advert_for(artifact, 1)});
    ctx.send(1, advert);
    ctx.send(1, advert);
    ctx.send(1, advert);
  });
  f.sim.run_until(sim::seconds(2));
  EXPECT_EQ(f.procs[1]->delivered.size(), 1u);
  EXPECT_EQ(f.procs[0]->requests_served, 1);
}

TEST(GossipTest, RetryAgainstSecondAdvertiserWhenFirstSilent) {
  GossipConfig cfg;
  cfg.request_jitter = 0;
  cfg.request_timeout = sim::msec(100);
  Fixture f(4, cfg);
  Bytes artifact = make_artifact(8000);
  Hash id = types::artifact_id(artifact);

  // Party 2 receives adverts from 0 (who does NOT hold the artifact — a
  // corrupt advertiser) and from 1 (honest holder).
  f.sim.engine().schedule_at(0, [&] {
    sim::Context ctx0(f.sim.network(), 0);
    types::AdvertMsg advert{artifact[0], 1, id, static_cast<uint32_t>(artifact.size())};
    ctx0.send(2, types::serialize_message(Message{advert}));
  });
  f.sim.engine().schedule_at(sim::msec(1), [&] {
    sim::Context ctx1(f.sim.network(), 1);
    f.procs[1]->gossip().store(artifact, 1);
    types::AdvertMsg advert{artifact[0], 1, id, static_cast<uint32_t>(artifact.size())};
    ctx1.send(2, types::serialize_message(Message{advert}));
  });
  f.sim.run_until(sim::seconds(3));
  // Whichever advertiser was tried first, retries reach the honest one.
  ASSERT_EQ(f.procs[2]->delivered.size(), 1u);
  EXPECT_EQ(f.procs[2]->delivered[0], artifact);
}

TEST(GossipTest, StoreIsIdempotent) {
  GossipLayer g({}, 0);
  Bytes a = make_artifact(100);
  EXPECT_TRUE(g.store(a, 3));
  EXPECT_FALSE(g.store(a, 3));
  EXPECT_EQ(g.stored_count(), 1u);
  EXPECT_TRUE(g.has(types::artifact_id(a)));
}

TEST(GossipTest, PruneDropsOldRounds) {
  GossipLayer g({}, 0);
  Bytes a = make_artifact(100);
  Bytes b = make_artifact(200);
  g.store(a, 3);
  g.store(b, 10);
  g.prune_below(5);
  EXPECT_FALSE(g.has(types::artifact_id(a)));
  EXPECT_TRUE(g.has(types::artifact_id(b)));
}

TEST(GossipTest, RequestForUnknownArtifactIgnored) {
  Fixture f(2);
  f.sim.engine().schedule_at(0, [&] {
    sim::Context ctx(f.sim.network(), 1);
    ctx.send(0, types::serialize_message(Message{types::RequestMsg{types::root_hash()}}));
  });
  f.sim.run_until(sim::seconds(1));
  EXPECT_TRUE(f.procs[1]->delivered.empty());
}

TEST(GossipTest, AdvertForHeldArtifactIgnored) {
  GossipConfig cfg;
  cfg.request_jitter = 0;
  Fixture f(2, cfg);
  Bytes artifact = make_artifact(500);
  f.sim.engine().schedule_at(0, [&] {
    f.procs[1]->gossip().store(artifact, 1);
    sim::Context ctx(f.sim.network(), 0);
    f.procs[0]->gossip().store(artifact, 1);
    ctx.send(1, types::serialize_message(
                    Message{f.procs[0]->gossip().advert_for(artifact, 1)}));
  });
  f.sim.run_until(sim::seconds(1));
  EXPECT_EQ(f.procs[0]->requests_served, 0);
}

}  // namespace
}  // namespace icc::gossip
