// End-to-end tests for the offline operator tools (tools/icc_audit,
// tools/icc_critpath) invoked as real subprocesses: the CSV time series has
// the documented columns and one row per finalized round, and the exit-code
// contract CI leans on (0 clean, 1 named violation / failed hop check, 2
// usage or I/O error) is pinned. Binary paths are injected by CMake via
// ICC_AUDIT_BIN / ICC_CRITPATH_BIN.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "obs/journal.hpp"

namespace icc {
namespace {

std::string write_honest_journal(const std::string& path) {
  harness::ClusterOptions o;
  o.n = 16;
  o.t = 5;
  o.protocol = harness::Protocol::kIcc0;
  o.seed = 7;
  o.delta_bnd = sim::msec(300);
  o.payload_size = 256;
  o.obs.enabled = true;
  o.obs.journal = true;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  harness::Cluster cluster(o);
  cluster.run_for(sim::seconds(5));
  EXPECT_EQ(cluster.check_safety(), std::nullopt);
  std::string jsonl = cluster.journal_jsonl();
  std::ofstream(path, std::ios::binary | std::ios::trunc) << jsonl;
  return jsonl;
}

int run_tool(const std::string& cmd) {
  int status = std::system((cmd + " >/dev/null 2>&1").c_str());
  EXPECT_TRUE(WIFEXITED(status)) << cmd;
  return WEXITSTATUS(status);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Pulls an integer field out of a flat JSON report without a JSON parser.
long json_int(const std::string& json, const std::string& key) {
  size_t at = json.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << key;
  if (at == std::string::npos) return -1;
  return std::strtol(json.c_str() + at + key.size() + 3, nullptr, 10);
}

class ToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    journal_ = dir_ + "icc_tool_test_journal.jsonl";
    jsonl_ = write_honest_journal(journal_);
    ASSERT_FALSE(jsonl_.empty());
  }
  std::string dir_, journal_, jsonl_;
};

TEST_F(ToolTest, AuditCsvHasDocumentedColumnsAndOneRowPerFinalizedRound) {
  std::string report_path = dir_ + "icc_tool_test_report.json";
  std::string csv_path = dir_ + "icc_tool_test_rounds.csv";
  ASSERT_EQ(run_tool(std::string(ICC_AUDIT_BIN) + " " + journal_ + " --report " +
                     report_path + " --csv " + csv_path + " --quiet"),
            0);

  std::string report = slurp(report_path);
  EXPECT_NE(report.find("\"schema\":\"icc-audit/v1\""), std::string::npos);
  EXPECT_NE(report.find("\"ok\":true"), std::string::npos);
  long finalized = json_int(report, "finalized_rounds");
  ASSERT_GT(finalized, 0);

  std::string csv = slurp(csv_path);
  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header,
            "round,hash,propose_ts,first_share_ts,quorum_ts,finalized_ts,"
            "propose_to_final_us");
  long rows = 0;
  for (std::string line; std::getline(lines, line);) {
    if (line.empty()) continue;
    ++rows;
    // Every row is fully attributed on the honest fast path: seven fields,
    // none of them the -1 "unattributed" sentinel.
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 6) << line;
    EXPECT_EQ(line.find(",-1"), std::string::npos) << line;
  }
  EXPECT_EQ(rows, finalized);
}

TEST_F(ToolTest, AuditExitCodeContract) {
  // 1: a tampered journal (forged second finalization) names its invariant.
  std::string tampered = dir_ + "icc_tool_test_tampered.jsonl";
  size_t at = jsonl_.find("\"type\":\"finalized\"");
  ASSERT_NE(at, std::string::npos);
  auto parsed = obs::Journal::parse_jsonl(jsonl_);
  uint64_t round = 0;
  for (const auto& ev : parsed.events)
    if (ev.type == obs::journal_type::kFinalized) {
      round = ev.round;
      break;
    }
  std::ofstream(tampered, std::ios::binary | std::ios::trunc)
      << jsonl_
      << "{\"seq\":999999,\"type\":\"finalized\",\"ts\":999999,\"party\":0,"
         "\"round\":"
      << round << ",\"hash\":\"" << std::string(64, 'f') << "\"}\n";
  EXPECT_EQ(run_tool(std::string(ICC_AUDIT_BIN) + " " + tampered), 1);

  // 2: usage and I/O errors.
  EXPECT_EQ(run_tool(std::string(ICC_AUDIT_BIN)), 2);
  EXPECT_EQ(run_tool(std::string(ICC_AUDIT_BIN) + " " + dir_ +
                     "icc_tool_test_missing.jsonl"),
            2);
  EXPECT_EQ(run_tool(std::string(ICC_AUDIT_BIN) + " " + journal_ + " --bogus"), 2);
}

TEST_F(ToolTest, CritpathExitCodeContract) {
  // 0: honest journal passes the derived hop check and writes its artifacts.
  std::string report_path = dir_ + "icc_tool_test_critpath.json";
  std::string dot_path = dir_ + "icc_tool_test_round.dot";
  ASSERT_EQ(run_tool(std::string(ICC_CRITPATH_BIN) + " " + journal_ +
                     " --check-hops --report " + report_path + " --dot " + dot_path +
                     " --quiet"),
            0);
  std::string report = slurp(report_path);
  EXPECT_NE(report.find("\"schema\":\"icc-critpath/v1\""), std::string::npos);
  EXPECT_NE(slurp(dot_path).find("digraph"), std::string::npos);

  // 1: wrong expected hop count fails the structural check.
  EXPECT_EQ(run_tool(std::string(ICC_CRITPATH_BIN) + " " + journal_ +
                     " --check-hops 4 --quiet"),
            1);

  // 1: a deleted recv line is rejected with a named causal error.
  std::string tampered = dir_ + "icc_tool_test_norecv.jsonl";
  size_t at = jsonl_.find("\"type\":\"recv\"");
  ASSERT_NE(at, std::string::npos);
  size_t bol = jsonl_.rfind('\n', at);
  bol = bol == std::string::npos ? 0 : bol + 1;
  size_t eol = jsonl_.find('\n', at);
  std::ofstream(tampered, std::ios::binary | std::ios::trunc)
      << jsonl_.substr(0, bol) << jsonl_.substr(eol + 1);
  EXPECT_EQ(run_tool(std::string(ICC_CRITPATH_BIN) + " " + tampered + " --quiet"), 1);

  // 2: usage and I/O errors.
  EXPECT_EQ(run_tool(std::string(ICC_CRITPATH_BIN)), 2);
  EXPECT_EQ(run_tool(std::string(ICC_CRITPATH_BIN) + " " + dir_ +
                     "icc_tool_test_missing.jsonl"),
            2);
}

}  // namespace
}  // namespace icc
