// Causal-layer tests: the icc-journal/v2 send/recv edge schema, critical-path
// extraction matching the paper's structural latency claims (3 hops / 3δ for
// ICC0 and ICC1, 4 hops / 4δ for ICC2 under fixed delays), rejection of
// tampered journals with a named causal error, and v2-vs-v1 determinism (the
// causal layer adds events but never changes a protocol decision or stamp).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "harness/cluster.hpp"
#include "obs/audit.hpp"
#include "obs/causal.hpp"
#include "obs/journal.hpp"

namespace icc {
namespace {

// Payload stays below the gossip push threshold so ICC1 pushes full blocks:
// the 3-hop critical path is the pushed fast path (a pulled block adds an
// advert/request round-trip, which the analyzer books as gossip_wait queue
// time — see DESIGN.md §5.2).
harness::ClusterOptions causal_options(size_t n, harness::Protocol proto) {
  harness::ClusterOptions o;
  o.n = n;
  o.t = (n - 1) / 3;
  o.protocol = proto;
  o.seed = 7;
  o.delta_bnd = sim::msec(300);
  o.payload_size = 256;
  o.obs.enabled = true;
  o.obs.journal = true;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  return o;
}

std::string run_jsonl(const harness::ClusterOptions& o, int seconds) {
  harness::Cluster cluster(o);
  cluster.run_for(sim::seconds(seconds));
  EXPECT_EQ(cluster.check_safety(), std::nullopt);
  return cluster.journal_jsonl();
}

// Removes the whole journal line holding the first occurrence of `needle`.
std::string drop_line_with(const std::string& jsonl, const std::string& needle) {
  size_t at = jsonl.find(needle);
  EXPECT_NE(at, std::string::npos) << needle;
  if (at == std::string::npos) return jsonl;
  size_t bol = jsonl.rfind('\n', at);
  bol = bol == std::string::npos ? 0 : bol + 1;
  size_t eol = jsonl.find('\n', at);
  return jsonl.substr(0, bol) + jsonl.substr(eol + 1);
}

// ---------------------------------------------------------------------------
// v2 event schema
// ---------------------------------------------------------------------------

TEST(Causal, EdgeFieldsRoundTripJson) {
  obs::JournalEvent ev;
  ev.type = obs::journal_type::kSend;
  ev.ts = 7890;
  ev.party = 2;
  ev.peer = 11;
  ev.edge = 3;
  const uint8_t hash_bytes[] = {0xde, 0xad};
  ev.set_hash(hash_bytes, sizeof hash_bytes);
  std::string line = obs::Journal::event_json(ev, 5);
  EXPECT_NE(line.find("\"peer\":11"), std::string::npos) << line;
  EXPECT_NE(line.find("\"edge\":3"), std::string::npos) << line;
  auto back = obs::Journal::parse_event_line(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, obs::journal_type::kSend);
  EXPECT_EQ(back->peer, 11u);
  EXPECT_EQ(back->edge, 3u);
  EXPECT_EQ(back->hash_hex(), "dead");
}

TEST(Causal, SchemaTagTracksCausalSwitch) {
  auto o = causal_options(4, harness::Protocol::kIcc0);
  auto v2 = obs::Journal::parse_jsonl(run_jsonl(o, 2));
  EXPECT_EQ(v2.meta.schema, obs::JournalMeta::kSchemaV2);

  o.obs.journal_causal = false;
  auto v1 = obs::Journal::parse_jsonl(run_jsonl(o, 2));
  EXPECT_EQ(v1.meta.schema, obs::JournalMeta::kSchemaV1);
  for (const auto& ev : v1.events) {
    EXPECT_NE(ev.type, obs::journal_type::kSend);
    EXPECT_NE(ev.type, obs::journal_type::kRecv);
  }
}

// ---------------------------------------------------------------------------
// Structural latency claims (the paper's 3δ / 4δ, §1.1 and §5)
// ---------------------------------------------------------------------------

// Under a fixed 10 ms delay every complete round's critical path must have
// exactly 3 network hops for ICC0/ICC1 (propose → notar shares → final
// shares) and 4 for ICC2 (the erasure-coded echo hop), commit latency must
// equal hops × δ, and with instantaneous processing the decomposition must
// be all network.
TEST(Causal, HonestHopCountsMatchPaper) {
  const std::pair<harness::Protocol, int> cases[] = {
      {harness::Protocol::kIcc0, 3},
      {harness::Protocol::kIcc1, 3},
      {harness::Protocol::kIcc2, 4},
  };
  for (const auto& [proto, expected] : cases) {
    std::string jsonl = run_jsonl(causal_options(16, proto), 5);
    obs::CritPathReport report = obs::analyze_journal_jsonl(jsonl);
    ASSERT_TRUE(report.error.empty()) << report.error;
    ASSERT_GT(report.rounds_complete, 0u);
    EXPECT_EQ(report.rounds_complete, report.rounds_analyzed);
    EXPECT_EQ(obs::CritPathReport::expected_hops(report.meta.protocol), expected);
    std::string violation;
    EXPECT_TRUE(report.check_hops(expected, &violation)) << violation;
    ASSERT_EQ(report.hop_histogram.size(), 1u);
    EXPECT_EQ(report.hop_histogram.begin()->first, expected);
    EXPECT_EQ(report.total.p50, expected * sim::msec(10));
    EXPECT_EQ(report.total.max, expected * sim::msec(10));
    EXPECT_NEAR(report.network_share, 1.0, 1e-9);
    EXPECT_NEAR(report.queue_share + report.crypto_share, 0.0, 1e-9);
    EXPECT_FALSE(report.stragglers.empty());
  }
}

// A corrupt leader journals nothing (corrupt slots carry a null Obs), so its
// rounds walk back to an unrecorded propose: they must be reported incomplete
// and excluded from the hop histogram, while honest rounds still check clean.
TEST(Causal, CorruptLeaderRoundsAreIncompleteNotErrors) {
  auto o = causal_options(7, harness::Protocol::kIcc0);
  o.corrupt.emplace_back(2, harness::Crashed{});
  obs::CritPathReport report = obs::analyze_journal_jsonl(run_jsonl(o, 10));
  ASSERT_TRUE(report.error.empty()) << report.error;
  ASSERT_GT(report.rounds_complete, 0u);
  std::string violation;
  EXPECT_TRUE(report.check_hops(3, &violation)) << violation;
}

// ---------------------------------------------------------------------------
// Tampered journals are rejected with a named causal error
// ---------------------------------------------------------------------------

TEST(Causal, TamperedJournalsRejectedWithNamedError) {
  std::string jsonl = run_jsonl(causal_options(16, harness::Protocol::kIcc0), 5);
  ASSERT_TRUE(obs::analyze_journal_jsonl(jsonl).error.empty());

  // Deleting a recv line gaps that receiver's 1-based delivery index.
  {
    obs::CritPathReport r =
        obs::analyze_journal_jsonl(drop_line_with(jsonl, "\"type\":\"recv\""));
    EXPECT_EQ(r.error.rfind("causal-missing-recv", 0), 0u) << r.error;
  }
  // Deleting a send orphans the matching recv's edge id.
  {
    obs::CritPathReport r =
        obs::analyze_journal_jsonl(drop_line_with(jsonl, "\"type\":\"send\""));
    EXPECT_EQ(r.error.rfind("causal-missing-send", 0), 0u) << r.error;
  }
  // Stripping the causal layer entirely leaves nothing to analyze.
  {
    std::string stripped;
    size_t pos = 0;
    while (pos < jsonl.size()) {
      size_t eol = jsonl.find('\n', pos);
      std::string line = jsonl.substr(pos, eol - pos);
      if (line.find("\"type\":\"send\"") == std::string::npos &&
          line.find("\"type\":\"recv\"") == std::string::npos)
        stripped += line + "\n";
      pos = eol + 1;
    }
    obs::CritPathReport r = obs::analyze_journal_jsonl(stripped);
    EXPECT_EQ(r.error.rfind("causal-no-edges", 0), 0u) << r.error;
  }
}

// A v1 journal (causal layer off) is a valid audit input but not a valid
// critical-path input: the analyzer must name the missing layer rather than
// fabricate paths.
TEST(Causal, V1JournalAuditsButDoesNotAnalyze) {
  auto o = causal_options(7, harness::Protocol::kIcc0);
  o.obs.journal_causal = false;
  std::string jsonl = run_jsonl(o, 5);
  obs::AuditReport audit = obs::audit_jsonl(jsonl);
  EXPECT_TRUE(audit.ok()) << audit.to_json();
  EXPECT_GT(audit.finalized_rounds, 0u);
  obs::CritPathReport report = obs::analyze_journal_jsonl(jsonl);
  EXPECT_EQ(report.error.rfind("causal-no-edges", 0), 0u) << report.error;
}

// ---------------------------------------------------------------------------
// Determinism: the causal layer observes, it never perturbs
// ---------------------------------------------------------------------------

// Toggling the causal sub-switch must not change a protocol decision, a
// timestamp, or message-layer totals; the v2 journal minus its send/recv
// lines must be event-for-event identical to the v1 journal.
TEST(Causal, V2MatchesV1WithEdgesFiltered) {
  auto run = [](bool causal) {
    auto o = causal_options(7, harness::Protocol::kIcc1);
    o.obs.journal_causal = causal;
    return run_jsonl(o, 5);
  };
  auto v2 = obs::Journal::parse_jsonl(run(true));
  auto v1 = obs::Journal::parse_jsonl(run(false));
  ASSERT_GT(v1.events.size(), 0u);
  ASSERT_GT(v2.events.size(), v1.events.size());

  // Re-serialize with a fixed seq: the causal layer shifts global sequence
  // numbers but must leave every protocol event's payload untouched.
  std::vector<std::string> filtered, base;
  for (const auto& ev : v2.events)
    if (ev.type != obs::journal_type::kSend && ev.type != obs::journal_type::kRecv)
      filtered.push_back(obs::Journal::event_json(ev, 0));
  for (const auto& ev : v1.events) base.push_back(obs::Journal::event_json(ev, 0));
  EXPECT_EQ(filtered, base);
}

// Same seed, causal on => byte-identical journals (extends the v1 byte
// determinism guarantee to the v2 edge layer: edge ids and seqs are
// deterministic, no pointer- or hash-order leaks into the file).
TEST(Causal, V2ByteDeterministicAcrossSameSeedRuns) {
  for (auto proto : {harness::Protocol::kIcc0, harness::Protocol::kIcc1,
                     harness::Protocol::kIcc2}) {
    auto o = causal_options(7, proto);
    std::string a = run_jsonl(o, 3);
    std::string b = run_jsonl(o, 3);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "protocol " << static_cast<int>(proto);
  }
}

// Thread-count axis: the v2 edge layer (fingerprints, per-link seqs, order
// keys captured at journal-append time) must survive party-parallel
// stepping byte-for-byte — edges are recorded through the defer queue in
// canonical event order at any thread count (DESIGN.md §6).
TEST(Causal, V2ByteDeterministicAcrossThreadCounts) {
  for (auto proto : {harness::Protocol::kIcc0, harness::Protocol::kIcc2}) {
    auto o = causal_options(7, proto);
    o.threads = 1;
    std::string baseline = run_jsonl(o, 3);
    ASSERT_FALSE(baseline.empty());
    for (size_t threads : {2u, 8u}) {
      o.threads = threads;
      EXPECT_EQ(run_jsonl(o, 3), baseline)
          << "protocol " << static_cast<int>(proto) << ", " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace icc
