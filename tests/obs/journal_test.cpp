// Flight-recorder tests: journal export determinism, the offline auditor's
// pass/fail behaviour (honest runs audit clean for all three protocols; a
// tampered journal fails naming the violated invariant), adversary runs
// producing no false positives, and the tracer's self-describing metadata.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "harness/cluster.hpp"
#include "obs/audit.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"

namespace icc {
namespace {

harness::ClusterOptions journal_options(size_t n, harness::Protocol proto) {
  harness::ClusterOptions o;
  o.n = n;
  o.t = (n - 1) / 3;
  o.protocol = proto;
  o.seed = 7;
  o.delta_bnd = sim::msec(300);
  o.payload_size = 128;
  o.obs.enabled = true;
  o.obs.journal = true;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  return o;
}

std::string run_journal(const harness::ClusterOptions& o, int seconds = 10) {
  harness::Cluster cluster(o);
  cluster.run_for(sim::seconds(seconds));
  EXPECT_EQ(cluster.check_safety(), std::nullopt);
  return cluster.journal_jsonl();
}

// ---------------------------------------------------------------------------
// Journal core
// ---------------------------------------------------------------------------

TEST(Journal, CapacityBoundCountsDrops) {
  obs::Journal j(2);
  obs::JournalEvent ev;
  ev.type = obs::journal_type::kCommit;
  for (int i = 0; i < 5; ++i) j.append(ev);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.dropped(), 3u);
  EXPECT_NE(j.to_jsonl().find("\"dropped\":3"), std::string::npos);
}

TEST(Journal, CapacityZeroDisables) {
  obs::Journal j(0);
  EXPECT_FALSE(j.enabled());
  obs::JournalEvent ev;
  ev.type = obs::journal_type::kCommit;
  j.append(ev);
  EXPECT_EQ(j.size(), 0u);
}

TEST(Journal, EventJsonRoundTrips) {
  obs::JournalEvent ev;
  ev.type = obs::journal_type::kNotarAgg;
  ev.ts = 123456;
  ev.party = 3;
  ev.round = 9;
  ev.proposer = 1;
  const uint8_t hash_bytes[] = {0xab, 0x12};
  ev.set_hash(hash_bytes, sizeof hash_bytes);
  ev.signers = {0, 2, 5};
  ev.detail = "combined";
  std::string line = obs::Journal::event_json(ev, 42);
  EXPECT_NE(line.find("\"hash\":\"ab12\""), std::string::npos);
  auto back = obs::Journal::parse_event_line(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, obs::journal_type::kNotarAgg);  // interned pointer
  EXPECT_EQ(back->ts, 123456);
  EXPECT_EQ(back->party, 3u);
  EXPECT_EQ(back->round, 9u);
  EXPECT_EQ(back->proposer, 1u);
  EXPECT_EQ(back->hash_hex(), "ab12");
  EXPECT_EQ(back->signers, (std::vector<uint32_t>{0, 2, 5}));
  EXPECT_STREQ(back->detail, "combined");
}

TEST(Journal, MetaLineRoundTrips) {
  obs::JournalMeta m{16, 5, "icc1", 99};
  std::string line = obs::Journal::meta_json(m, 10, 0);
  auto back = obs::Journal::parse_meta_line(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->n, 16u);
  EXPECT_EQ(back->t, 5u);
  EXPECT_EQ(back->quorum(), 11u);
  EXPECT_EQ(back->protocol, "icc1");
  EXPECT_EQ(back->seed, 99u);
}

// ---------------------------------------------------------------------------
// Determinism and cluster wiring
// ---------------------------------------------------------------------------

// Same seed => byte-identical journal file, for every protocol. This is the
// property that makes journals diffable across runs and machines.
TEST(Journal, ByteDeterministicAcrossSameSeedRuns) {
  for (auto proto : {harness::Protocol::kIcc0, harness::Protocol::kIcc1,
                     harness::Protocol::kIcc2}) {
    auto o = journal_options(7, proto);
    std::string a = run_journal(o, 5);
    std::string b = run_journal(o, 5);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "protocol " << static_cast<int>(proto);
  }
}

TEST(Journal, DisabledByDefaultEvenWithObsOn) {
  auto o = journal_options(4, harness::Protocol::kIcc0);
  o.obs.journal = false;
  harness::Cluster cluster(o);
  cluster.run_for(sim::seconds(2));
  EXPECT_EQ(cluster.journal(), nullptr);
  EXPECT_TRUE(cluster.journal_jsonl().empty());
  EXPECT_FALSE(cluster.dump_journal("/tmp/icc_journal_should_not_exist.jsonl"));
}

// Enabling the journal must not change a single protocol decision.
TEST(Journal, JournalOnOffDeterminism) {
  auto run = [](bool journal) {
    auto o = journal_options(7, harness::Protocol::kIcc1);
    o.obs.journal = journal;
    o.corrupt.emplace_back(2, harness::Crashed{});
    harness::Cluster cluster(o);
    cluster.run_for(sim::seconds(10));
    std::vector<std::pair<types::Round, types::Hash>> out;
    for (const auto& b : cluster.party(0)->committed()) out.emplace_back(b.round, b.hash);
    const auto& nm = cluster.sim().network().metrics();
    return std::make_tuple(out, nm.total_messages.load(), nm.total_bytes.load(),
                           cluster.max_honest_round());
  };
  EXPECT_EQ(run(false), run(true));
}

// Thread-count axis (DESIGN.md §6): journal bytes, the metrics document and
// the traffic totals of a party-parallel run must be identical to the
// sequential run — appends ride the defer queue in canonical event order,
// counters are commutative atomics.
TEST(Journal, ByteIdenticalAcrossThreadCounts) {
  auto run = [](size_t threads) {
    auto o = journal_options(7, harness::Protocol::kIcc0);
    o.threads = threads;
    o.corrupt.emplace_back(2, harness::Crashed{});
    harness::Cluster cluster(o);
    cluster.run_for(sim::seconds(10));
    return std::make_pair(cluster.journal_jsonl(), cluster.metrics_json());
  };
  auto baseline = run(1);
  ASSERT_FALSE(baseline.first.empty());
  for (size_t threads : {2u, 8u}) {
    EXPECT_EQ(run(threads), baseline) << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Auditor: honest runs audit clean
// ---------------------------------------------------------------------------

TEST(Audit, HonestRunsPassForAllProtocols) {
  for (auto proto : {harness::Protocol::kIcc0, harness::Protocol::kIcc1,
                     harness::Protocol::kIcc2}) {
    std::string jsonl = run_journal(journal_options(16, proto), 10);
    obs::AuditReport report = obs::audit_jsonl(jsonl);
    EXPECT_TRUE(report.has_meta);
    EXPECT_TRUE(report.ok()) << "protocol " << static_cast<int>(proto) << ": "
                             << report.to_json();
    EXPECT_GT(report.finalized_rounds, 0u);
    EXPECT_EQ(report.parties_seen, 16u);
    // Every finalized round gets a complete phase attribution on the honest
    // fast path, and each phase is at least one network hop (10 ms here).
    size_t complete = 0;
    for (const auto& lat : report.round_latencies) complete += lat.complete();
    EXPECT_EQ(complete, report.round_latencies.size());
    EXPECT_GE(report.mean_propose_to_final_us, 10'000);
    // The machine-readable report certifies the checks it ran.
    std::string json = report.to_json();
    EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(json.find("\"unique-finalization\":0"), std::string::npos);
    EXPECT_NE(json.find("\"quorum-size\":0"), std::string::npos);
    // CSV time series: header + one row per finalized round.
    std::string csv = report.rounds_csv();
    size_t rows = std::count(csv.begin(), csv.end(), '\n');
    EXPECT_EQ(rows, report.round_latencies.size() + 1);
  }
}

// ---------------------------------------------------------------------------
// Auditor: tampered journals fail, naming the invariant
// ---------------------------------------------------------------------------

// Appends a forged finalization for a different block in an already
// finalized round — the auditor must flag unique-finalization (Lemma 7).
TEST(Audit, TamperedDuplicateFinalizationFails) {
  std::string jsonl = run_journal(journal_options(16, harness::Protocol::kIcc0), 10);
  auto parsed = obs::Journal::parse_jsonl(jsonl);
  uint64_t round = 0;
  bool found = false;
  for (const auto& ev : parsed.events) {
    if (ev.type == obs::journal_type::kFinalized) {
      round = ev.round;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  jsonl += "{\"seq\":999999,\"type\":\"finalized\",\"ts\":999999,\"party\":0,\"round\":" +
           std::to_string(round) + ",\"hash\":\"" + std::string(64, 'f') + "\"}\n";

  obs::AuditReport report = obs::audit_jsonl(jsonl);
  EXPECT_FALSE(report.ok());
  ASSERT_GT(report.by_invariant.at("unique-finalization"), 0u);
  bool named = false;
  for (const auto& v : report.violations)
    if (v.invariant == "unique-finalization" && v.round == round) named = true;
  EXPECT_TRUE(named) << report.to_json();
  // The forged notarized-conflict invariant also fires via finalization:
  EXPECT_NE(report.to_json().find("\"ok\":false"), std::string::npos);
}

// Thins a locally combined notarization's signer set below n-t — the
// auditor must flag quorum-size (the definition of a notarization).
TEST(Audit, TamperedThinnedQuorumFails) {
  std::string jsonl = run_journal(journal_options(16, harness::Protocol::kIcc0), 10);
  size_t at = jsonl.find("\"type\":\"notar_agg\"");
  while (at != std::string::npos) {
    size_t eol = jsonl.find('\n', at);
    if (jsonl.substr(at, eol - at).find("\"detail\":\"combined\"") != std::string::npos)
      break;
    at = jsonl.find("\"type\":\"notar_agg\"", eol);
  }
  ASSERT_NE(at, std::string::npos) << "no locally combined notarization recorded";
  size_t sig = jsonl.find("\"signers\":[", at);
  size_t end = jsonl.find(']', sig);
  ASSERT_NE(sig, std::string::npos);
  jsonl.replace(sig, end + 1 - sig, "\"signers\":[0,1]");  // quorum here is 11

  obs::AuditReport report = obs::audit_jsonl(jsonl);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.by_invariant.at("quorum-size"), 0u);
  bool named = false;
  for (const auto& v : report.violations)
    if (v.invariant == "quorum-size" &&
        v.detail.find("2 distinct signers, quorum is 11") != std::string::npos)
      named = true;
  EXPECT_TRUE(named) << report.to_json();
}

// A conflicting notarization share by one party for the same proposer must
// flag the accountability invariant (Fig. 1 (c) forbids it for honest
// parties — a journal showing it is cryptographic evidence of misbehaviour).
TEST(Audit, TamperedConflictingShareFails) {
  std::string jsonl = run_journal(journal_options(7, harness::Protocol::kIcc0), 5);
  auto parsed = obs::Journal::parse_jsonl(jsonl);
  const obs::JournalEvent* share = nullptr;
  for (const auto& ev : parsed.events)
    if (ev.type == obs::journal_type::kNotarShare) {
      share = &ev;
      break;
    }
  ASSERT_NE(share, nullptr);
  jsonl += "{\"seq\":999999,\"type\":\"notar_share\",\"ts\":999999,\"party\":" +
           std::to_string(share->party) + ",\"round\":" + std::to_string(share->round) +
           ",\"proposer\":" + std::to_string(share->proposer) + ",\"hash\":\"" +
           std::string(64, 'e') + "\"}\n";
  obs::AuditReport report = obs::audit_jsonl(jsonl);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.by_invariant.at("no-conflicting-notar-share"), 0u);
}

// ---------------------------------------------------------------------------
// Auditor: adversary runs produce no false positives
// ---------------------------------------------------------------------------

// Only honest parties journal (corrupt slots get a null Obs), so equivocating
// and crashed adversaries must not trip any invariant: the whole point of the
// paper's safety argument is that honest behaviour stays clean under attack.
TEST(Audit, ByzantineAdversariesProduceNoFalsePositives) {
  struct Case {
    const char* name;
    harness::CorruptBehavior behavior;
  };
  consensus::ByzantineBehavior equivocate;
  equivocate.equivocate = true;
  consensus::ByzantineBehavior empty_payload;
  empty_payload.empty_payload = true;
  const Case cases[] = {
      {"crash", harness::Crashed{}},
      {"equivocate", equivocate},
      {"empty_payload", empty_payload},
  };
  for (const auto& c : cases) {
    auto o = journal_options(7, harness::Protocol::kIcc0);
    o.corrupt.emplace_back(1, c.behavior);
    o.corrupt.emplace_back(4, c.behavior);
    std::string jsonl = run_journal(o, 15);
    obs::AuditReport report = obs::audit_jsonl(jsonl);
    EXPECT_TRUE(report.ok()) << c.name << ": " << report.to_json();
  }
}

// ---------------------------------------------------------------------------
// Tracer metadata (satellite: self-describing trace exports)
// ---------------------------------------------------------------------------

TEST(Tracer, JsonEmbedsRingMetadata) {
  obs::Tracer t(2);
  obs::TraceEvent ev;
  ev.name = "x";
  ev.cat = "c";
  ev.ph = 'i';
  for (int i = 0; i < 5; ++i) {
    ev.ts = i;
    t.record(ev);
  }
  std::string json = t.to_json();
  EXPECT_NE(json.find("\"metadata\":{\"recorded\":5,\"dropped\":3,\"capacity\":2}"),
            std::string::npos)
      << json;
  // Still a valid Chrome trace document shape.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.rfind("\"displayTimeUnit\":\"ms\"}"),
            json.size() - std::string("\"displayTimeUnit\":\"ms\"}").size());
}

}  // namespace
}  // namespace icc
