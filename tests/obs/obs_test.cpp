// Telemetry tests: metric primitives, the span tracer's ring/export, the
// end-to-end cluster wiring (paper-expected round/message counters on an
// all-honest run), and the on/off determinism guarantee.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "harness/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace icc {
namespace {

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

TEST(Metrics, CounterMerge) {
  obs::Counter a, b;
  a.add();
  a.add(41);
  b.add(8);
  a.merge(b);
  EXPECT_EQ(a.value(), 50u);
}

TEST(Metrics, HistogramBucketsAndStats) {
  obs::Histogram h(obs::Histogram::linear(10, 4));  // le 10, 20, 30, 40
  h.record(1);
  h.record(10);   // both land in le=10
  h.record(11);   // le=20
  h.record(100);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 122);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Metrics, HistogramMergeRequiresSameBounds) {
  obs::Histogram a(obs::Histogram::linear(10, 4));
  obs::Histogram b(obs::Histogram::linear(10, 4));
  obs::Histogram c(obs::Histogram::linear(5, 4));
  a.record(5);
  b.record(15);
  b.record(500);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 500);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Metrics, HistogramPercentileNearestBucket) {
  obs::Histogram h(obs::Histogram::linear(1, 10));
  for (int i = 0; i < 99; ++i) h.record(1);
  h.record(10);
  EXPECT_EQ(h.percentile(0.5), 1);
  EXPECT_EQ(h.percentile(0.999), 10);
}

TEST(Metrics, ExponentialBoundsStrictlyAscending) {
  auto b = obs::Histogram::exponential(1, 1.01, 32);  // tiny factor stalls
  for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(Metrics, RegistrySharesByNameAndSnapshots) {
  obs::Registry r;
  r.counter("a.events").add(3);
  r.counter("a.events").add(4);  // same object
  r.gauge("b.depth").set(-2);
  r.histogram("c.lat", obs::Histogram::linear(10, 2)).record(15);

  std::string json = r.snapshot_json();
  EXPECT_NE(json.find("\"counters\":{\"a.events\":7}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"b.depth\":-2}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c.lat\":{\"count\":1,\"sum\":15"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":[[10,0],[20,1]]"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Metrics, RegistryMerge) {
  obs::Registry a, b;
  a.counter("x").add(1);
  b.counter("x").add(2);
  b.counter("y").add(5);
  b.histogram("h", obs::Histogram::linear(1, 4)).record(2);
  a.merge(b);
  EXPECT_EQ(a.find_counter("x")->value(), 3u);
  EXPECT_EQ(a.find_counter("y")->value(), 5u);
  EXPECT_EQ(a.find_histogram("h")->count(), 1u);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Tracer, RingKeepsTailAndCountsDrops) {
  obs::Tracer t(4);
  for (int i = 0; i < 10; ++i) t.complete("ev", "test", 0, 0, i * 100, 10);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  // The export holds the last 4 events (ts 600..900), time-ordered.
  std::string json = t.to_json();
  EXPECT_EQ(json.find("\"ts\":500"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":600"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":900"), std::string::npos);
  EXPECT_LT(json.find("\"ts\":600"), json.find("\"ts\":900"));
}

TEST(Tracer, DisabledCapacityZeroRecordsNothing) {
  obs::Tracer t(0);
  t.complete("ev", "test", 0, 0, 0, 1);
  t.instant("ev", "test", 0, 0, 0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_NE(t.to_json().find("\"traceEvents\":[]"), std::string::npos);
}

TEST(Tracer, ChromeTraceEventShape) {
  obs::Tracer t(16);
  t.complete("round", "consensus", 3, 0, 1000, 250, "round", 7, "leader", 2);
  t.instant("finalize", "consensus", 3, 0, 1250, "round", 7);
  std::string json = t.to_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"name\":\"round\",\"cat\":\"consensus\",\"ph\":\"X\",\"ts\":1000,"
                      "\"dur\":250,\"pid\":3,\"tid\":0,\"args\":{\"round\":7,\"leader\":2}"),
            std::string::npos)
      << json;
  // Instant events carry a scope and no dur.
  EXPECT_NE(json.find("\"ph\":\"i\",\"ts\":1250,\"pid\":3,\"tid\":0,\"s\":\"t\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\"}"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Harness stats satellite (percentile semantics)
// ---------------------------------------------------------------------------

TEST(SummaryStats, PercentileMethods) {
  harness::Summary s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  // Interpolating percentile: generally not an observed sample.
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.5);
  // Nearest-rank: always an observed sample.
  EXPECT_DOUBLE_EQ(s.percentile_nearest_rank(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile_nearest_rank(0.91), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile_nearest_rank(1.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile_nearest_rank(0.0), 1.0);
}

TEST(SummaryStats, ToHistogramHandoff) {
  harness::Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  obs::Histogram h = s.to_histogram(obs::Histogram::linear(25, 4));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.bucket_counts()[0], 25u);
  EXPECT_EQ(h.max(), 100);
}

// ---------------------------------------------------------------------------
// Cluster wiring
// ---------------------------------------------------------------------------

harness::ClusterOptions observed_options(size_t n, bool enabled) {
  harness::ClusterOptions o;
  o.n = n;
  o.t = (n - 1) / 3;
  o.protocol = harness::Protocol::kIcc0;
  o.seed = 7;
  o.delta_bnd = sim::msec(300);
  o.payload_size = 128;
  o.obs.enabled = enabled;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  return o;
}

TEST(ClusterObs, HonestRunMatchesPaperExpectedCounters) {
  const size_t n = 16;
  harness::Cluster cluster(observed_options(n, true));
  cluster.run_for(sim::seconds(10));
  ASSERT_EQ(cluster.check_safety(), std::nullopt);

  const obs::Registry& r = cluster.obs()->registry();
  auto counter = [&](const char* name) -> uint64_t {
    const obs::Counter* c = r.find_counter(name);
    return c ? c->value() : 0;
  };

  // All parties are honest, delays are fixed well under Delta_bnd: every
  // round finishes cleanly on the rank-0 leader's block (the paper's
  // fast path), so the tagged counters must all agree.
  const uint64_t rounds = counter("consensus.rounds");
  ASSERT_GT(rounds, 0u);
  EXPECT_EQ(counter("consensus.rounds_clean"), rounds);
  EXPECT_EQ(counter("consensus.rounds_leader_block"), rounds);
  EXPECT_EQ(counter("consensus.rounds_honest_leader"), rounds);
  EXPECT_EQ(counter("consensus.rounds_corrupt_leader"), 0u);

  // Rounds-to-finalize is exactly 1 on the fast path (paper: O(1) expected;
  // deterministic here) — every recorded gap lands in the first bucket.
  const obs::Histogram* gap = r.find_histogram("consensus.finalize_gap_rounds");
  ASSERT_NE(gap, nullptr);
  ASSERT_GT(gap->count(), 0u);
  EXPECT_EQ(gap->max(), 1);

  // The probe's commit counter must agree exactly with the parties' output
  // queues, and the snapshot's folded network gauges with the simulator's
  // own accounting.
  uint64_t committed = 0;
  for (size_t i = 0; i < n; ++i) committed += cluster.party(i)->committed().size();
  EXPECT_EQ(counter("consensus.blocks_committed"), committed);
  const auto& nm = cluster.sim().network().metrics();
  (void)cluster.metrics_json();  // folds NetworkMetrics into the registry
  ASSERT_NE(r.find_gauge("net.total_messages"), nullptr);
  EXPECT_EQ(static_cast<uint64_t>(r.find_gauge("net.total_messages")->value()),
            nm.total_messages);
  EXPECT_EQ(static_cast<uint64_t>(r.find_gauge("net.total_bytes")->value()),
            nm.total_bytes);

  // Paper message complexity: ICC0 is all-to-all push, O(n^2) wire messages
  // per round (each broadcast costs n-1 sends; a round carries a constant
  // number of broadcast types per party). Assert the per-round average sits
  // in a loose constant band around n^2.
  const uint64_t rounds_reached = cluster.max_honest_round();
  ASSERT_GT(rounds_reached, 1u);
  const double per_round =
      static_cast<double>(nm.total_messages) / static_cast<double>(rounds_reached);
  const double n2 = static_cast<double>(n) * static_cast<double>(n - 1);
  EXPECT_GT(per_round, 2.0 * n2);
  EXPECT_LT(per_round, 12.0 * n2);

  // Latency histograms were fed and the trace ring saw the run.
  const obs::Histogram* fin = r.find_histogram("consensus.finalize_us");
  ASSERT_NE(fin, nullptr);
  EXPECT_GT(fin->count(), 0u);
  EXPECT_GT(cluster.obs()->tracer().recorded(), 0u);

  // Snapshot carries the folded stats structs alongside the live metrics.
  std::string json = cluster.metrics_json();
  EXPECT_NE(json.find("\"consensus.rounds\""), std::string::npos);
  EXPECT_NE(json.find("\"pipeline.decoded\""), std::string::npos);
  EXPECT_NE(json.find("\"verify.cache_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"net.total_messages\""), std::string::npos);
}

TEST(ClusterObs, CorruptLeaderRoundsAreTagged) {
  auto o = observed_options(7, true);
  o.corrupt.emplace_back(1, harness::Crashed{});
  o.corrupt.emplace_back(4, harness::Crashed{});
  harness::Cluster cluster(o);
  cluster.run_for(sim::seconds(20));

  const obs::Registry& r = cluster.obs()->registry();
  const obs::Counter* corrupt = r.find_counter("consensus.rounds_corrupt_leader");
  const obs::Counter* honest = r.find_counter("consensus.rounds_honest_leader");
  ASSERT_NE(corrupt, nullptr);
  ASSERT_NE(honest, nullptr);
  // With 2/7 slots crashed, the beacon hands the crashed slots rank 0 in
  // roughly 2/7 of rounds — both tags must fire.
  EXPECT_GT(corrupt->value(), 0u);
  EXPECT_GT(honest->value(), 0u);
}

TEST(ClusterObs, DisabledTelemetryExposesNothing) {
  harness::Cluster cluster(observed_options(4, false));
  cluster.run_for(sim::seconds(2));
  EXPECT_EQ(cluster.obs(), nullptr);
  EXPECT_EQ(cluster.metrics_json(), "{}");
  EXPECT_EQ(cluster.trace_json(), "{}");
  EXPECT_FALSE(cluster.dump_trace("/tmp/icc_obs_should_not_exist.json"));
}

// Enabling telemetry must not change a single protocol decision: the same
// seed must produce bit-identical outputs and traffic with probes on and off.
TEST(ClusterObs, OnOffDeterminism) {
  auto run = [](bool enabled, harness::Protocol proto) {
    auto o = observed_options(7, enabled);
    o.protocol = proto;
    o.corrupt.emplace_back(2, harness::Crashed{});
    harness::Cluster cluster(o);
    cluster.run_for(sim::seconds(10));
    std::vector<std::pair<types::Round, types::Hash>> out;
    for (const auto& b : cluster.party(0)->committed()) out.emplace_back(b.round, b.hash);
    const auto& nm = cluster.sim().network().metrics();
    return std::make_tuple(out, nm.total_messages.load(), nm.total_bytes.load(),
                           cluster.max_honest_round());
  };
  for (auto proto : {harness::Protocol::kIcc0, harness::Protocol::kIcc1}) {
    auto off = run(false, proto);
    auto on = run(true, proto);
    EXPECT_EQ(off, on);
  }
}

TEST(ClusterObs, GossipProbesFireUnderIcc1) {
  auto o = observed_options(7, true);
  o.protocol = harness::Protocol::kIcc1;
  o.payload_size = 8192;  // above push_threshold: forces advert/pull
  harness::Cluster cluster(o);
  cluster.run_for(sim::seconds(10));

  const obs::Registry& r = cluster.obs()->registry();
  ASSERT_NE(r.find_counter("gossip.adverts"), nullptr);
  EXPECT_GT(r.find_counter("gossip.adverts")->value(), 0u);
  EXPECT_GT(r.find_counter("gossip.requests_sent")->value(), 0u);
  EXPECT_GT(r.find_counter("gossip.requests_served")->value(), 0u);
  const obs::Histogram* fetch = r.find_histogram("gossip.fetch_us");
  ASSERT_NE(fetch, nullptr);
  EXPECT_GT(fetch->count(), 0u);
}

TEST(ClusterObs, StageWallTimingIsOptIn) {
  auto base = observed_options(4, true);
  {
    harness::Cluster cluster(base);
    cluster.run_for(sim::seconds(2));
    EXPECT_EQ(cluster.obs()->registry().find_histogram("pipeline.decode_wall_ns"),
              nullptr);
  }
  base.obs.stage_wall_timing = true;
  {
    harness::Cluster cluster(base);
    cluster.run_for(sim::seconds(2));
    const obs::Histogram* h =
        cluster.obs()->registry().find_histogram("pipeline.decode_wall_ns");
    ASSERT_NE(h, nullptr);
    EXPECT_GT(h->count(), 0u);
  }
}

}  // namespace
}  // namespace icc
