// The runtime observatory's two contracts (obs/runtime.hpp):
//
//  1. It is observation-only: flipping obs.runtime on, at any thread count,
//     must not move a single byte of the deterministic outputs (journal
//     JSONL, metrics JSON). This is the determinism exemption's other half —
//     the profiler may be non-deterministic precisely because nothing it
//     does feeds back into the run.
//  2. Its own artifacts are well-formed under stress: an overflowing span
//     ring reports `spans_dropped` instead of corrupting, the icc-runtime/v1
//     document round-trips through parse_runtime_report, and the offline
//     tool (tools/icc_runtime, path injected via ICC_RUNTIME_BIN) pins the
//     CI exit-code contract: 0 clean, 1 failed --check, 2 usage/I-O/parse.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "obs/runtime.hpp"

namespace icc {
namespace {

struct DeterministicBytes {
  std::string journal;
  std::string metrics;
};

harness::ClusterOptions base_options(size_t threads, bool runtime) {
  harness::ClusterOptions o;
  o.n = 8;
  o.t = 2;
  o.seed = 5;
  o.protocol = harness::Protocol::kIcc0;
  o.delta_bnd = sim::msec(300);
  o.payload_size = 128;
  o.threads = threads;
  o.obs.enabled = true;
  o.obs.journal = true;
  o.obs.runtime = runtime;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  return o;
}

DeterministicBytes run_and_export(size_t threads, bool runtime) {
  harness::Cluster c(base_options(threads, runtime));
  c.run_for(sim::seconds(3));
  EXPECT_EQ(c.check_safety(), std::nullopt);
  EXPECT_GT(c.min_honest_committed(), 0u);
  return {c.journal_jsonl(), c.metrics_json()};
}

// Contract 1: the profiler never perturbs the deterministic byte streams.
// Reference = profiler off at 1 thread; every (runtime, threads) combination
// must reproduce it exactly.
TEST(RuntimeDeterminism, JournalAndMetricsBytesUnchangedByProfiler) {
  const DeterministicBytes ref = run_and_export(1, false);
  ASSERT_FALSE(ref.journal.empty());
  ASSERT_NE(ref.metrics, "{}");
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (bool runtime : {false, true}) {
      if (threads == 1 && !runtime) continue;  // the reference itself
      const DeterministicBytes got = run_and_export(threads, runtime);
      EXPECT_EQ(got.journal, ref.journal)
          << "journal bytes moved at threads=" << threads
          << " runtime=" << runtime;
      EXPECT_EQ(got.metrics, ref.metrics)
          << "metrics bytes moved at threads=" << threads
          << " runtime=" << runtime;
    }
  }
}

// The profiler only exists when both obs.enabled and obs.runtime are set;
// everywhere else the instrumentation sites see a null pointer.
TEST(RuntimeProfilerTest, NullUnlessEnabled) {
  {
    harness::ClusterOptions o = base_options(1, false);
    harness::Cluster c(o);
    EXPECT_EQ(c.runtime(), nullptr);
    EXPECT_EQ(c.runtime_report_json(), "{}");
    EXPECT_EQ(c.runtime_trace_json(), "{}");
  }
  {
    harness::ClusterOptions o = base_options(1, true);
    o.obs.enabled = false;  // runtime flag alone must not resurrect it
    harness::Cluster c(o);
    EXPECT_EQ(c.runtime(), nullptr);
  }
}

// Contract 2a: a deliberately tiny span ring overflows, reports the loss in
// spans_dropped, and still exports a document the parser accepts.
TEST(RuntimeProfilerTest, RingOverflowSetsDroppedAndReportStillParses) {
  harness::ClusterOptions o = base_options(2, true);
  o.obs.runtime_span_capacity = 4;
  harness::Cluster c(o);
  c.run_for(sim::seconds(3));
  const obs::RuntimeReport rep = c.runtime_report();
  uint64_t dropped = 0, recorded = 0;
  for (const auto& w : rep.workers) {
    dropped += w.spans_dropped;
    recorded += w.spans_recorded;
  }
  EXPECT_GT(recorded, 4u);
  EXPECT_GT(dropped, 0u) << "a 4-slot ring must overflow on a 3 s run";

  std::string error;
  auto parsed = obs::parse_runtime_report(c.runtime_report_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const obs::RuntimeAnalysis a = obs::analyze_runtime(*parsed);
  EXPECT_GT(a.serial_fraction, 0.0);
  EXPECT_LE(a.serial_fraction, 1.0);
}

// Contract 2b: the JSON document is an exact inverse of the report for
// every field the analysis consumes.
TEST(RuntimeProfilerTest, ReportRoundTripsThroughJson) {
  harness::ClusterOptions o = base_options(2, true);
  harness::Cluster c(o);
  c.run_for(sim::seconds(3));
  const obs::RuntimeReport rep = c.runtime_report();
  ASSERT_GT(rep.wall_ns, 0);
  ASSERT_EQ(rep.threads, 2u);
  ASSERT_FALSE(rep.workers.empty());

  std::string error;
  auto parsed = obs::parse_runtime_report(obs::runtime_report_json(rep), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->threads, rep.threads);
  EXPECT_EQ(parsed->wall_ns, rep.wall_ns);
  EXPECT_EQ(parsed->defer_high_water, rep.defer_high_water);
  EXPECT_EQ(parsed->has_intern, rep.has_intern);
  EXPECT_EQ(parsed->intern_parses, rep.intern_parses);
  ASSERT_EQ(parsed->workers.size(), rep.workers.size());
  for (size_t i = 0; i < rep.workers.size(); ++i) {
    const auto& a = parsed->workers[i];
    const auto& b = rep.workers[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.busy_ns, b.busy_ns);
    EXPECT_EQ(a.idle_ns, b.idle_ns);
    EXPECT_EQ(a.cpu_ns, b.cpu_ns);
    EXPECT_EQ(a.claimed, b.claimed);
    EXPECT_EQ(a.stolen, b.stolen);
    EXPECT_EQ(a.spans_dropped, b.spans_dropped);
    for (size_t k = 0; k < obs::kTaskKinds; ++k) {
      EXPECT_EQ(a.tasks[k].count, b.tasks[k].count);
      EXPECT_EQ(a.tasks[k].total_ns, b.tasks[k].total_ns);
      EXPECT_EQ(a.tasks[k].exclusive_ns, b.tasks[k].exclusive_ns);
    }
    for (size_t k = 0; k < obs::kLockSites; ++k) {
      EXPECT_EQ(a.locks[k].acquisitions, b.locks[k].acquisitions);
      EXPECT_EQ(a.locks[k].contended, b.locks[k].contended);
      EXPECT_EQ(a.locks[k].wait_ns, b.locks[k].wait_ns);
    }
  }
}

TEST(RuntimeParserTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(obs::parse_runtime_report("", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::parse_runtime_report("not json at all", &error).has_value());
  EXPECT_FALSE(obs::parse_runtime_report("{\"schema\":\"icc-audit/v1\"}", &error)
                   .has_value())
      << "wrong schema must be rejected";
  // Structurally valid but meaningless documents.
  EXPECT_FALSE(obs::parse_runtime_report(
                   "{\"schema\":\"icc-runtime/v1\",\"threads\":0,"
                   "\"wall_ns\":5,\"workers\":[]}",
                   &error)
                   .has_value());
  EXPECT_FALSE(obs::parse_runtime_report(
                   "{\"schema\":\"icc-runtime/v1\",\"threads\":2,"
                   "\"wall_ns\":0,\"workers\":[]}",
                   &error)
                   .has_value());
  // Truncation anywhere must fail cleanly, never crash or accept.
  harness::ClusterOptions o = base_options(2, true);
  harness::Cluster c(o);
  c.run_for(sim::seconds(1));
  const std::string good = c.runtime_report_json();
  ASSERT_TRUE(obs::parse_runtime_report(good, &error).has_value()) << error;
  for (size_t cut : {good.size() / 4, good.size() / 2, good.size() - 2}) {
    EXPECT_FALSE(obs::parse_runtime_report(good.substr(0, cut), &error).has_value())
        << "accepted a document truncated at " << cut;
  }
}

int run_tool(const std::string& cmd) {
  int status = std::system((cmd + " >/dev/null 2>&1").c_str());
  EXPECT_TRUE(WIFEXITED(status)) << cmd;
  return WEXITSTATUS(status);
}

// Exit-code contract of the offline analyzer, as a real subprocess.
TEST(RuntimeToolTest, ExitCodeContract) {
  const std::string dir = ::testing::TempDir();
  const std::string good_path = dir + "icc_runtime_test_report.json";
  harness::ClusterOptions o = base_options(2, true);
  harness::Cluster c(o);
  c.run_for(sim::seconds(2));
  ASSERT_TRUE(c.dump_runtime_report(good_path));

  // 0: well-formed report, --check passes (serial fraction in (0, 1]).
  EXPECT_EQ(run_tool(std::string(ICC_RUNTIME_BIN) + " " + good_path), 0);
  EXPECT_EQ(run_tool(std::string(ICC_RUNTIME_BIN) + " " + good_path + " --check"), 0);

  // 2: usage, missing file, malformed bytes.
  EXPECT_EQ(run_tool(std::string(ICC_RUNTIME_BIN)), 2);
  EXPECT_EQ(run_tool(std::string(ICC_RUNTIME_BIN) + " " + dir +
                     "icc_runtime_test_missing.json"),
            2);
  const std::string bad_path = dir + "icc_runtime_test_malformed.json";
  std::ofstream(bad_path, std::ios::binary | std::ios::trunc)
      << "{\"schema\":\"icc-runtime/v1\",\"threads\":2,";
  EXPECT_EQ(run_tool(std::string(ICC_RUNTIME_BIN) + " " + bad_path), 2);
  EXPECT_EQ(run_tool(std::string(ICC_RUNTIME_BIN) + " " + good_path + " --bogus"), 2);
}

}  // namespace
}  // namespace icc
