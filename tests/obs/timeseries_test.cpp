// Windowed time-series recorder (obs/timeseries.hpp) and the icc_drift
// offline analyzer.
//
// The load-bearing contract: the deterministic series lines (meta + windows)
// are BYTE-IDENTICAL for a given seed at any thread count and the recorder
// never perturbs the run — journal and metrics bytes are unchanged whether
// the series is on or off. The icc_drift tool (path injected via
// ICC_DRIFT_BIN) pins the exit-code contract: 0 clean, 1 when --check trips
// a detector (named in the report), 2 on usage/IO/malformed input.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "obs/timeseries.hpp"

namespace {
using namespace icc;

harness::ClusterOptions base_options(harness::Protocol p, size_t threads, bool series) {
  harness::ClusterOptions o;
  o.n = 4;
  o.t = 1;
  o.protocol = p;
  o.seed = 77;
  o.threads = threads;
  o.obs.enabled = true;
  o.obs.series = series;
  o.obs.series_window_us = 2'000'000;
  o.obs.series_wall = false;  // only the deterministic lines in these tests
  return o;
}

std::string series_bytes(harness::Protocol p, size_t threads) {
  harness::Cluster c(base_options(p, threads, true));
  c.run_for(sim::seconds(30));
  return c.series_jsonl();
}

// Same seed => same series bytes at 1, 2 and 8 threads, for every protocol.
// This is the journal contract extended to the longitudinal stream.
TEST(TimeSeriesTest, BytesIdenticalAcrossThreadCounts) {
  for (harness::Protocol p : {harness::Protocol::kIcc0, harness::Protocol::kIcc1,
                              harness::Protocol::kIcc2}) {
    const std::string t1 = series_bytes(p, 1);
    ASSERT_FALSE(t1.empty());
    EXPECT_EQ(t1, series_bytes(p, 2)) << "protocol " << static_cast<int>(p);
    EXPECT_EQ(t1, series_bytes(p, 8)) << "protocol " << static_cast<int>(p);
  }
}

// Recording the series must not change the run: metrics bytes (which cover
// every counter/gauge/histogram the windows diff) are identical on/off, at
// any thread count.
TEST(TimeSeriesTest, MetricsBytesUnchangedBySeries) {
  for (harness::Protocol p : {harness::Protocol::kIcc0, harness::Protocol::kIcc1,
                              harness::Protocol::kIcc2}) {
    std::string with, without;
    for (size_t threads : {size_t{1}, size_t{8}}) {
      {
        harness::Cluster c(base_options(p, threads, true));
        c.run_for(sim::seconds(20));
        with = c.metrics_json();
      }
      {
        harness::Cluster c(base_options(p, threads, false));
        c.run_for(sim::seconds(20));
        without = c.metrics_json();
      }
      EXPECT_EQ(with, without) << "protocol " << static_cast<int>(p) << " threads "
                               << threads;
    }
  }
}

// The run drains completely (max_round) before the trailing boundaries
// fire, so every counter increment falls inside some closed window: the
// per-window deltas must sum exactly to the final cumulative counters, and
// the dedup'd per-window round counts (with their leader splits) must be
// consistent. (Without the drain, events at exactly the run deadline land
// after the last closed window — by design, a boundary at B closes before
// events at B run.)
TEST(TimeSeriesTest, WindowDeltasSumToFinalCounters) {
  harness::ClusterOptions o = base_options(harness::Protocol::kIcc0, 1, true);
  o.max_round = 400;
  harness::Cluster c(o);
  c.run_for(sim::seconds(60));
  const obs::TimeSeries::Parsed parsed = obs::TimeSeries::parse_jsonl(c.series_jsonl());
  ASSERT_TRUE(parsed.has_meta);
  ASSERT_FALSE(parsed.windows.empty());

  uint64_t rounds_sum = 0, committed_sum = 0, leaders_sum = 0;
  int64_t last_start = -1;
  for (const auto& w : parsed.windows) {
    EXPECT_GT(w.start_us, last_start) << "windows must be time-ordered";
    last_start = w.start_us;
    rounds_sum += w.rounds;
    for (const auto& [party, led] : w.leaders) {
      EXPECT_LT(party, 4u);
      leaders_sum += led;
    }
    for (const auto& [name, delta] : w.counters) {
      EXPECT_GT(delta, 0u) << name << ": zero deltas must be omitted";
      if (name == "consensus.blocks_committed") committed_sum += delta;
    }
  }
  EXPECT_EQ(leaders_sum, rounds_sum) << "every dedup'd round has one leader";

  const obs::Registry& r = c.obs()->registry();
  EXPECT_EQ(committed_sum, r.find_counter("consensus.blocks_committed")->value());
  // Each of the 4 honest parties reports every round; the series counts each
  // round once.
  EXPECT_EQ(rounds_sum * 4, r.find_counter("consensus.rounds")->value());
}

// With a small full-res budget, old windows decimate 10-into-1; the exported
// sequence must stay time-ordered with the merged windows carrying res=10^k
// and total coverage equal to everything that closed.
TEST(TimeSeriesTest, HierarchicalDecimationKeepsCoverage) {
  harness::ClusterOptions o = base_options(harness::Protocol::kIcc0, 1, true);
  o.obs.series_window_us = 1'000'000;
  o.obs.series_full_res = 16;
  harness::Cluster c(o);
  c.run_for(sim::seconds(200));

  obs::TimeSeries* ts = c.series();
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->windows_closed(), 200u);

  uint64_t coverage = 0;
  int64_t last_start = -1;
  bool saw_merged = false;
  uint64_t prev_res = UINT64_MAX;
  for (const obs::SeriesWindow* w : ts->windows()) {
    EXPECT_GT(w->start_us, last_start);
    last_start = w->start_us;
    EXPECT_LE(w->res, prev_res) << "older windows are coarser, never finer";
    prev_res = w->res;
    coverage += w->res;
    if (w->res > 1) {
      saw_merged = true;
      EXPECT_EQ(w->res % 10, 0u) << "merges are exactly 10-into-1";
      EXPECT_EQ(w->end_us - w->start_us,
                static_cast<int64_t>(w->res) * o.obs.series_window_us);
    }
  }
  EXPECT_TRUE(saw_merged);
  EXPECT_EQ(coverage, ts->windows_closed());
  // The in-memory footprint stays near the budget instead of growing with
  // the run: 200 base windows fit in two levels of <= 16 entries each.
  EXPECT_LE(ts->windows().size(), 2 * o.obs.series_full_res);
}

// The stream sink sees every full-resolution window as it closes; with a
// large enough in-memory budget (no decimation) the file must equal the
// in-memory export byte for byte.
TEST(TimeSeriesTest, StreamMatchesInMemoryExport) {
  const std::string path = ::testing::TempDir() + "timeseries_stream_test.jsonl";
  harness::ClusterOptions o = base_options(harness::Protocol::kIcc0, 2, true);
  harness::Cluster c(o);
  ASSERT_TRUE(c.stream_series(path));
  c.run_for(sim::seconds(30));
  c.series()->flush();
  EXPECT_EQ(c.series()->dropped(), 0u);

  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), c.series_jsonl());
}

TEST(TimeSeriesTest, ParseRoundTrip) {
  harness::Cluster c(base_options(harness::Protocol::kIcc2, 1, true));
  c.run_for(sim::seconds(30));
  const std::string text = c.series_jsonl();
  const obs::TimeSeries::Parsed parsed = obs::TimeSeries::parse_jsonl(text);
  ASSERT_TRUE(parsed.has_meta);
  EXPECT_EQ(parsed.meta.n, 4u);
  EXPECT_EQ(parsed.meta.t, 1u);
  EXPECT_EQ(parsed.meta.protocol, "icc2");
  EXPECT_EQ(parsed.meta.seed, 77u);
  EXPECT_EQ(parsed.meta.window_us, 2'000'000);
  EXPECT_EQ(parsed.windows.size(), c.series()->windows().size());
  for (size_t i = 0; i < parsed.windows.size(); ++i) {
    const obs::SeriesWindow* w = c.series()->windows()[i];
    EXPECT_EQ(parsed.windows[i].seq, w->seq);
    EXPECT_EQ(parsed.windows[i].rounds, w->rounds);
    EXPECT_EQ(parsed.windows[i].counters, w->counters);
    EXPECT_EQ(parsed.windows[i].leaders, w->leaders);
  }
}

// ---------------------------------------------------------------------------
// icc_drift exit-code contract, as a real subprocess.

int run_tool(const std::string& cmd) {
  int status = std::system((cmd + " >/dev/null 2>&1").c_str());
  EXPECT_TRUE(WIFEXITED(status)) << cmd;
  return WEXITSTATUS(status);
}

std::string run_tool_stdout(const std::string& cmd, const std::string& out_path) {
  int status = std::system((cmd + " >" + out_path + " 2>/dev/null").c_str());
  EXPECT_TRUE(WIFEXITED(status)) << cmd;
  std::ifstream in(out_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream(path, std::ios::binary | std::ios::trunc) << text;
}

/// A synthetic 60-window series: steady rounds and leaders unless biased,
/// flat RSS unless ramped. Shapes the exact failure each detector hunts.
std::string synth_series(bool rss_ramp, bool biased_leader) {
  std::ostringstream s;
  s << "{\"type\":\"meta\",\"schema\":\"icc-series/v1\",\"n\":4,\"t\":1,"
       "\"protocol\":\"icc0\",\"seed\":1,\"window_us\":1000000,\"full_res\":512,"
       "\"wall\":1,\"corrupt\":[]}\n";
  for (int i = 0; i < 60; ++i) {
    const int total = 40;
    const int p0 = biased_leader ? 28 : 10;
    const int rest = (total - p0) / 3;
    s << "{\"type\":\"w\",\"seq\":" << i << ",\"start_us\":" << i * 1000000
      << ",\"end_us\":" << (i + 1) * 1000000
      << ",\"res\":1,\"rounds\":" << total << ",\"leader_block\":" << total
      << ",\"clean\":" << total << ",\"honest_leader\":" << total
      << ",\"corrupt_leader\":0,\"leaders\":[[0," << p0 << "],[1," << rest
      << "],[2," << rest << "],[3," << total - p0 - 2 * rest
      << "]],\"counters\":{\"consensus.blocks_committed\":" << total * 4
      << "},\"gauges\":{},\"hist\":{\"consensus.finalize_us\":{\"count\":" << total
      << ",\"sum\":" << total * 30000
      << ",\"p50\":30000,\"p90\":31000,\"p99\":32000,\"max_le\":32000}}}\n";
    const long rss = rss_ramp ? 100000 + i * 5000 : 100000 + (i % 3) * 16;
    s << "{\"type\":\"wall\",\"seq\":" << i << ",\"rss_kb\":" << rss
      << ",\"peak_rss_kb\":" << rss << ",\"dropped\":0}\n";
  }
  return s.str();
}

// 0: a real (clean) soak series passes --check.
TEST(DriftToolTest, CleanRunPasses) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "drift_clean_series.jsonl";
  harness::ClusterOptions o = base_options(harness::Protocol::kIcc0, 1, true);
  o.obs.series_window_us = 1'000'000;
  o.obs.series_wall = true;  // exercise the wall lines + RSS detector
  harness::Cluster c(o);
  ASSERT_TRUE(c.stream_series(path));
  c.run_for(sim::seconds(60));
  c.series()->flush();
  EXPECT_EQ(run_tool(std::string(ICC_DRIFT_BIN) + " " + path + " --check"), 0);
}

// 1: an RSS ramp trips --check, and the report names the rss detector.
TEST(DriftToolTest, RssRampFailsNamingDetector) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "drift_rss_ramp.jsonl";
  write_file(path, synth_series(true, false));
  const std::string report = run_tool_stdout(
      std::string(ICC_DRIFT_BIN) + " " + path + " --check --quiet", dir + "drift_rss.out");
  EXPECT_EQ(run_tool(std::string(ICC_DRIFT_BIN) + " " + path + " --check"), 1);
  EXPECT_NE(report.find("\"failed\":[\"rss\"]"), std::string::npos) << report;
}

// 1: a beacon-bias (one party leading far too often) trips the chi-square
// uniformity detector by name.
TEST(DriftToolTest, BiasedLeaderFailsNamingDetector) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "drift_biased.jsonl";
  write_file(path, synth_series(false, true));
  const std::string report = run_tool_stdout(
      std::string(ICC_DRIFT_BIN) + " " + path + " --check --quiet",
      dir + "drift_biased.out");
  EXPECT_EQ(run_tool(std::string(ICC_DRIFT_BIN) + " " + path + " --check"), 1);
  EXPECT_NE(report.find("\"leaders\""), std::string::npos) << report;
  EXPECT_NE(report.find("\"failed\":[\"leaders\"]"), std::string::npos) << report;
}

// The same synthetic stream without the injected defect passes: the
// detectors respond to the defect, not to the fixture's shape.
TEST(DriftToolTest, SynthBaselinePasses) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "drift_synth_clean.jsonl";
  write_file(path, synth_series(false, false));
  EXPECT_EQ(run_tool(std::string(ICC_DRIFT_BIN) + " " + path + " --check"), 0);
}

// 2: usage, missing file, malformed bytes.
TEST(DriftToolTest, MalformedInputsExitTwo) {
  const std::string dir = ::testing::TempDir();
  EXPECT_EQ(run_tool(std::string(ICC_DRIFT_BIN)), 2);
  EXPECT_EQ(run_tool(std::string(ICC_DRIFT_BIN) + " " + dir + "drift_missing.jsonl"), 2);
  const std::string bad = dir + "drift_malformed.jsonl";
  write_file(bad, "this is not a series\n");
  EXPECT_EQ(run_tool(std::string(ICC_DRIFT_BIN) + " " + bad), 2);
  // A stream with a meta line but no windows is unusable for trend analysis.
  const std::string empty = dir + "drift_empty.jsonl";
  write_file(empty,
             "{\"type\":\"meta\",\"schema\":\"icc-series/v1\",\"n\":4,\"t\":1,"
             "\"protocol\":\"icc0\",\"seed\":1,\"window_us\":1000000,"
             "\"full_res\":512,\"wall\":0,\"corrupt\":[]}\n");
  EXPECT_EQ(run_tool(std::string(ICC_DRIFT_BIN) + " " + empty), 2);
  EXPECT_EQ(run_tool(std::string(ICC_DRIFT_BIN) + " " + empty + " --bogus"), 2);
}

}  // namespace
