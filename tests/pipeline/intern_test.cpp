// Cluster-shared artifact interning (DESIGN.md §7): the InternStore parses
// each distinct wire payload exactly once and never conflates equivocating
// payloads, the shared verdict memo stays bounded, and — the core contract —
// interning is behaviour-neutral: committed sequences, logical verifier
// stats and journal bytes (icc-journal/v2 with causal edges) are identical
// with interning on or off, at 1, 2 and 8 threads, for all three protocols,
// including under an equivocating leader.
#include "pipeline/intern.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/cluster.hpp"
#include "types/messages.hpp"

namespace icc::pipeline {
namespace {

using types::Block;
using types::Message;

Block make_block(types::Round round, types::PartyIndex proposer,
                 const std::string& payload) {
  Block b;
  b.round = round;
  b.proposer = proposer;
  b.parent_hash = types::root_hash();
  b.payload = str_bytes(payload);
  return b;
}

std::shared_ptr<const Bytes> wire_of(const Message& m) {
  return std::make_shared<const Bytes>(types::serialize_message(m));
}

// ---------------------------------------------------------------------------
// InternStore unit behaviour
// ---------------------------------------------------------------------------

TEST(InternStore, OneParsePerDistinctPayload) {
  InternStore store;
  types::NotarizationShareMsg share{1, 0, make_block(1, 0, "p").hash(), 2,
                                    str_bytes("signature")};
  auto wire = wire_of(Message{share});

  auto a = store.intern(wire);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(a->msg, nullptr);
  EXPECT_EQ(a->artifact_id, types::artifact_id(*wire));
  EXPECT_FALSE(a->sender_scoped);
  EXPECT_EQ(store.stats().parses, 1u);

  // A second receiver holding a *different allocation* of the same bytes
  // (the non-broadcast case) still lands on the same interned entry.
  auto b = store.intern(std::make_shared<const Bytes>(*wire));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->msg.get(), b->msg.get());
  EXPECT_EQ(store.stats().parses, 1u);
  EXPECT_EQ(store.stats().decode_hits, 1u);
}

TEST(InternStore, EquivocatingPayloadsNeverConflate) {
  // Equivocation-shaped input: same round, same proposer, different payload
  // bytes. The near-identical wires must intern as distinct entries with
  // distinct artifact ids — different bytes are different artifacts, always.
  InternStore store;
  types::ProposalMsg p1, p2;
  p1.block = make_block(3, 1, "fork A");
  p2.block = make_block(3, 1, "fork B");
  p1.authenticator = p2.authenticator = Bytes(64, 9);

  auto a = store.intern(wire_of(Message{p1}));
  auto b = store.intern(wire_of(Message{p2}));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a->artifact_id, b->artifact_id);
  ASSERT_NE(a->msg, nullptr);
  ASSERT_NE(b->msg, nullptr);
  EXPECT_NE(std::get<types::ProposalMsg>(*a->msg).block.hash(),
            std::get<types::ProposalMsg>(*b->msg).block.hash());
  EXPECT_EQ(store.stats().parses, 2u);
  EXPECT_EQ(store.stats().decode_hits, 0u);
}

TEST(InternStore, MalformedPayloadInternsOnceAsNull) {
  InternStore store;
  auto junk = std::make_shared<const Bytes>(Bytes{0xEE, 1, 2, 3});
  auto a = store.intern(junk);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->msg, nullptr);  // null msg = malformed, decided once
  auto b = store.intern(std::make_shared<const Bytes>(*junk));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(store.stats().parses, 1u);
  EXPECT_EQ(store.stats().decode_hits, 1u);
}

TEST(InternStore, SenderScopedFlagMatchesWireHelper) {
  InternStore store;
  types::AdvertMsg advert{1, 4, make_block(4, 0, "p").hash(), 1000};
  auto a = store.intern(wire_of(Message{advert}));
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->sender_scoped);  // adverts bypass dedup per sender
}

TEST(InternStore, ArtifactTableStaysBounded) {
  InternStore::Options small;
  small.artifact_capacity = 64;
  InternStore store(small);
  for (uint32_t i = 0; i < 1000; ++i) {
    types::NotarizationShareMsg s{1 + i, 0, make_block(1 + i, 0, "p").hash(), 0,
                                  str_bytes("s")};
    store.intern(wire_of(Message{s}));
  }
  EXPECT_EQ(store.stats().parses, 1000u);
  EXPECT_LE(store.interned_artifacts(), small.artifact_capacity);
}

TEST(InternStore, VerdictMemoRemembersPrimesAndStaysBounded) {
  InternStore::Options small;
  small.verdict_capacity = 64;
  InternStore store(small);

  types::Hash good = crypto::Sha256::hash("good key");
  types::Hash bad = crypto::Sha256::hash("bad key");
  EXPECT_FALSE(store.verdict(good).has_value());
  store.remember_verdict(good, true);
  store.remember_verdict(bad, false);
  ASSERT_TRUE(store.verdict(good).has_value());
  EXPECT_TRUE(*store.verdict(good));
  ASSERT_TRUE(store.verdict(bad).has_value());
  EXPECT_FALSE(*store.verdict(bad));

  types::Hash primed = crypto::Sha256::hash("primed key");
  store.prime_verdict(primed);
  ASSERT_TRUE(store.verdict(primed).has_value());
  EXPECT_TRUE(*store.verdict(primed));
  EXPECT_EQ(store.stats().verdicts_primed, 1u);

  for (uint32_t i = 0; i < 1000; ++i) {
    store.remember_verdict(crypto::Sha256::hash("k" + std::to_string(i)), true);
  }
  EXPECT_LE(store.cached_verdicts(), small.verdict_capacity);
}

// ---------------------------------------------------------------------------
// Behaviour neutrality: intern {on,off} × threads {1,2,8} × protocol
// ---------------------------------------------------------------------------

struct RunResult {
  std::vector<std::vector<std::pair<harness::Round, types::Hash>>> committed;
  std::string journal;  ///< icc-journal/v2 bytes (causal edges on)
  Verifier::Stats vstats;
  PipelineStats pstats;
  InternStore::Stats istats;
};

// An equivocating leader is part of every run: the store must keep the two
// fork payloads distinct while every honest party still shares one parse of
// each, and the verdict memo must serve verdicts for *both* forks' shares.
RunResult run_cluster(harness::Protocol protocol, bool intern, size_t threads) {
  harness::ClusterOptions o;
  o.n = 7;
  o.t = 2;
  // Seed mirrors pipeline_test: avoids a pre-existing seed-dependent Icc2
  // liveness stall that reproduces identically with interning on or off.
  o.seed = 501 + static_cast<uint64_t>(protocol);
  o.protocol = protocol;
  o.delta_bnd = sim::msec(120);
  o.payload_size = 300;
  o.intern = intern;
  o.threads = threads;
  o.obs.enabled = true;
  o.obs.journal = true;  // journal_causal defaults on → v2 with edges
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::UniformDelay>(sim::msec(3), sim::msec(18));
  };
  consensus::ByzantineBehavior eq;
  eq.equivocate = true;
  o.corrupt = {{1, eq}};

  harness::Cluster c(o);
  c.run_for(sim::seconds(5));
  EXPECT_FALSE(c.check_safety().has_value());

  RunResult r;
  for (size_t i = 0; i < o.n; ++i) {
    std::vector<std::pair<harness::Round, types::Hash>> seq;
    if (c.is_honest(i) && c.party(i)) {
      for (const auto& blk : c.party(i)->committed())
        seq.emplace_back(blk.round, blk.hash);
      EXPECT_GE(seq.size(), 4u) << "party " << i << " barely progressed";
    }
    r.committed.push_back(std::move(seq));
  }
  r.journal = c.journal_jsonl();
  r.vstats = c.verifier_stats();
  r.pstats = c.pipeline_stats();
  r.istats = c.intern_stats();
  return r;
}

void expect_equal(const RunResult& a, const RunResult& b, const std::string& what) {
  EXPECT_EQ(a.committed, b.committed) << what;
  EXPECT_EQ(a.journal, b.journal) << what << " (journal bytes differ)";
  // Logical stats: what a lone party *would* have verified/decoded — the
  // F-PIPE / Table 1 numbers must not notice the shared store.
  EXPECT_EQ(a.vstats.provider_verifications, b.vstats.provider_verifications) << what;
  EXPECT_EQ(a.vstats.cache_hits, b.vstats.cache_hits) << what;
  EXPECT_EQ(a.vstats.primed, b.vstats.primed) << what;
  EXPECT_EQ(a.vstats.batch_calls, b.vstats.batch_calls) << what;
  EXPECT_EQ(a.vstats.batch_fallbacks, b.vstats.batch_fallbacks) << what;
  EXPECT_EQ(a.pstats.decoded, b.pstats.decoded) << what;
  EXPECT_EQ(a.pstats.duplicates, b.pstats.duplicates) << what;
  EXPECT_EQ(a.pstats.malformed, b.pstats.malformed) << what;
  EXPECT_EQ(a.pstats.dedup_exempt, b.pstats.dedup_exempt) << what;
}

class InternMatrixTest : public ::testing::TestWithParam<harness::Protocol> {};

TEST_P(InternMatrixTest, JournalAndCommitsIdenticalInternOnOffAcrossThreads) {
  harness::Protocol protocol = GetParam();
  RunResult baseline = run_cluster(protocol, /*intern=*/false, /*threads=*/1);
  ASSERT_FALSE(baseline.journal.empty());
  for (bool intern : {false, true}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      if (!intern && threads == 1) continue;  // that is the baseline itself
      RunResult r = run_cluster(protocol, intern, threads);
      expect_equal(r, baseline,
                   std::string(intern ? "intern on" : "intern off") + ", " +
                       std::to_string(threads) + " threads");
    }
  }
}

TEST_P(InternMatrixTest, InternActuallyShares) {
  // The neutrality matrix would pass trivially if the store were never
  // consulted. At 1 thread the counters are exact: 6 honest receivers of
  // every broadcast must collapse to ~1 parse, and the shared memo must
  // absorb most per-party cache misses.
  RunResult r = run_cluster(GetParam(), /*intern=*/true, /*threads=*/1);
  EXPECT_GT(r.istats.parses, 0u);
  EXPECT_GT(r.istats.decode_hits, r.istats.parses)
      << "expected most decodes to be shared";
  EXPECT_GT(r.istats.verdict_memo_hits, r.istats.real_verifications)
      << "expected most verifications to be shared";
  // Logical accounting is unchanged: the per-party counters still describe
  // a lone verifier, so they dominate the real cluster-wide work.
  EXPECT_GT(r.vstats.provider_verifications, r.istats.real_verifications);

  RunResult off = run_cluster(GetParam(), /*intern=*/false, /*threads=*/1);
  EXPECT_EQ(off.istats.parses, 0u);
  EXPECT_EQ(off.istats.real_verifications, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, InternMatrixTest,
                         ::testing::Values(harness::Protocol::kIcc0,
                                           harness::Protocol::kIcc1,
                                           harness::Protocol::kIcc2),
                         [](const auto& info) {
                           return info.param == harness::Protocol::kIcc0   ? "Icc0"
                                  : info.param == harness::Protocol::kIcc1 ? "Icc1"
                                                                           : "Icc2";
                         });

}  // namespace
}  // namespace icc::pipeline
