// Tests of the staged ingress pipeline: dedup drops duplicate floods before
// any crypto, the verification cache memoizes without conflating distinct
// signatures, batch verification survives corrupted shares, and the whole
// pipeline is behaviour-neutral (bit-identical commit sequences on/off).
#include "pipeline/pipeline.hpp"

#include <gtest/gtest.h>

#include "harness/cluster.hpp"

namespace icc::pipeline {
namespace {

using types::Block;
using types::Message;

Block make_block(types::Round round, types::PartyIndex proposer) {
  Block b;
  b.round = round;
  b.proposer = proposer;
  b.parent_hash = types::root_hash();
  b.payload = str_bytes("payload");
  return b;
}

struct PipelineFixture : ::testing::Test {
  std::unique_ptr<crypto::CryptoProvider> crypto_ =
      crypto::make_fast_provider(4, 1, 42);
  PipelineOptions options_;
  Verifier verifier_{*crypto_, options_};
  IngressPipeline pipeline_{verifier_, options_, 4};
};

TEST_F(PipelineFixture, DuplicateFloodAbsorbedBeforeCrypto) {
  // The same notarization share delivered once per peer (echo flood): only
  // the first copy may pass decode; every other copy is dropped by dedup,
  // costing one hash and zero signature verifications.
  Block b = make_block(1, 0);
  Bytes msg = types::notarization_message(1, 0, b.hash());
  types::NotarizationShareMsg share{1, 0, b.hash(), 2,
                                    crypto_->threshold_sign_share(crypto::Scheme::kNotary, 2, msg)};
  Bytes wire = types::serialize_message(Message{share});

  auto first = pipeline_.decode(1, wire);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(pipeline_.verify_notarization_share(
      std::get<types::NotarizationShareMsg>(*first)));
  const uint64_t crypto_calls = verifier_.stats().provider_verifications;
  EXPECT_EQ(crypto_calls, 1u);

  // Flood: 10 more copies from each of parties 1 and 3.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(pipeline_.decode(1, wire).has_value());
    EXPECT_FALSE(pipeline_.decode(3, wire).has_value());
  }
  EXPECT_EQ(pipeline_.stats().duplicates, 20u);
  EXPECT_EQ(pipeline_.stats().duplicates_from[1], 10u);
  EXPECT_EQ(pipeline_.stats().duplicates_from[3], 10u);
  EXPECT_EQ(pipeline_.stats().duplicates_from[0], 0u);
  // Zero additional signature verifications for the whole flood.
  EXPECT_EQ(verifier_.stats().provider_verifications, crypto_calls);
}

TEST_F(PipelineFixture, SenderScopedMessagesBypassDedup) {
  // Identical advert bytes from two parties mean different things ("I hold
  // this artifact") and must both get through.
  types::AdvertMsg advert;
  advert.artifact_type = 1;  // proposal wire tag
  advert.round = 1;
  advert.artifact_id = make_block(1, 0).hash();
  advert.size_hint = 100;
  Bytes wire = types::serialize_message(Message{advert});
  EXPECT_TRUE(pipeline_.decode(1, wire).has_value());
  EXPECT_TRUE(pipeline_.decode(2, wire).has_value());
  EXPECT_EQ(pipeline_.stats().dedup_exempt, 2u);
  EXPECT_EQ(pipeline_.stats().duplicates, 0u);
}

TEST_F(PipelineFixture, DedupCapacityIsBounded) {
  PipelineOptions small;
  small.dedup_capacity = 8;
  IngressPipeline p(verifier_, small, 4);
  for (uint32_t i = 0; i < 100; ++i) {
    types::NotarizationShareMsg s{1 + i, 0, make_block(1 + i, 0).hash(), 0,
                                  str_bytes("s")};
    p.decode(0, types::serialize_message(Message{s}));
  }
  EXPECT_LE(p.dedup_entries(), 8u);
}

TEST_F(PipelineFixture, CacheNeverConflatesDistinctSignatures) {
  // Equivocation-shaped input: the same canonical message with two different
  // signature byte strings. The cache key covers the signature, so the
  // verdict for one can never be served for the other — and both verdicts
  // (valid AND invalid) are themselves cached.
  Block b = make_block(1, 0);
  Bytes msg = types::notarization_message(1, 0, b.hash());
  Bytes good = crypto_->threshold_sign_share(crypto::Scheme::kNotary, 2, msg);
  Bytes bad = good;
  bad[0] ^= 1;

  EXPECT_TRUE(verifier_.verify_threshold_share(crypto::Scheme::kNotary, 2, msg, good));
  EXPECT_FALSE(verifier_.verify_threshold_share(crypto::Scheme::kNotary, 2, msg, bad));
  EXPECT_EQ(verifier_.stats().provider_verifications, 2u);
  EXPECT_EQ(verifier_.stats().cache_hits, 0u);

  // Replay both: answered from the cache, verdicts unchanged.
  EXPECT_TRUE(verifier_.verify_threshold_share(crypto::Scheme::kNotary, 2, msg, good));
  EXPECT_FALSE(verifier_.verify_threshold_share(crypto::Scheme::kNotary, 2, msg, bad));
  EXPECT_EQ(verifier_.stats().provider_verifications, 2u);  // no new crypto
  EXPECT_EQ(verifier_.stats().cache_hits, 2u);

  // Same signature bytes under a different claimed signer is a distinct key.
  EXPECT_FALSE(verifier_.verify_threshold_share(crypto::Scheme::kNotary, 3, msg, good));
  EXPECT_EQ(verifier_.stats().provider_verifications, 3u);
}

TEST_F(PipelineFixture, SignAndPrimeMakesSelfVerificationFree) {
  Block b = make_block(1, 0);
  Bytes msg = types::notarization_message(1, 0, b.hash());
  Bytes share = verifier_.threshold_sign_share(crypto::Scheme::kNotary, 1, msg);
  EXPECT_EQ(verifier_.stats().primed, 1u);
  EXPECT_TRUE(verifier_.verify_threshold_share(crypto::Scheme::kNotary, 1, msg, share));
  EXPECT_EQ(verifier_.stats().provider_verifications, 0u);
  EXPECT_EQ(verifier_.stats().cache_hits, 1u);
}

TEST_F(PipelineFixture, CacheStaysBounded) {
  PipelineOptions small;
  small.cache_capacity = 64;
  Verifier v(*crypto_, small);
  Bytes msg = types::notarization_message(1, 0, make_block(1, 0).hash());
  for (uint32_t i = 0; i < 1000; ++i) {
    Bytes sig = str_bytes("sig");
    sig.push_back(static_cast<uint8_t>(i));
    sig.push_back(static_cast<uint8_t>(i >> 8));
    v.verify_threshold_share(crypto::Scheme::kNotary, 0, msg, sig);
  }
  EXPECT_LE(v.cached_verdicts(), small.cache_capacity);
}

/// Batch verification against real Ed25519: the batch equation fails with
/// one corrupted share and the per-item fallback must accept exactly the
/// good k-1 while pinpointing the bad one.
TEST(PipelineBatchTest, BatchWithOneCorruptedShareAcceptsTheRest) {
  auto crypto = crypto::make_real_provider(4, 1, 7);
  PipelineOptions options;
  Verifier verifier(*crypto, options);

  Block b = make_block(1, 0);
  Bytes msg = types::notarization_message(1, 0, b.hash());
  std::vector<std::pair<crypto::PartyIndex, Bytes>> shares;
  for (crypto::PartyIndex i = 0; i < 3; ++i)
    shares.emplace_back(i, crypto->threshold_sign_share(crypto::Scheme::kNotary, i, msg));
  shares[1].second[0] ^= 1;  // corrupt the middle share

  auto verdicts = verifier.verify_shares_batch(crypto::Scheme::kNotary, msg, shares);
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts[0], 1);
  EXPECT_EQ(verdicts[1], 0);
  EXPECT_EQ(verdicts[2], 1);
  EXPECT_EQ(verifier.stats().batch_calls, 1u);
  EXPECT_EQ(verifier.stats().batch_fallbacks, 1u);

  // A clean batch passes in one call, and its aggregate verifies.
  shares[1].second[0] ^= 1;  // restore
  Verifier fresh(*crypto, options);
  auto clean = fresh.verify_shares_batch(crypto::Scheme::kNotary, msg, shares);
  EXPECT_EQ(std::count(clean.begin(), clean.end(), 1), 3);
  EXPECT_EQ(fresh.stats().batch_calls, 1u);
  EXPECT_EQ(fresh.stats().batch_fallbacks, 0u);
  Bytes agg = fresh.threshold_combine(crypto::Scheme::kNotary, msg, shares);
  ASSERT_FALSE(agg.empty());
  EXPECT_TRUE(fresh.verify_threshold(crypto::Scheme::kNotary, msg, agg));
}

// --- determinism: the pipeline must be behaviour-neutral ---
//
// Dedup, caching and batching are pure optimizations: with identical seeds
// the committed (round, hash) sequence of every honest party must be
// bit-identical whether the stages are on or off, for every protocol and
// under adversarial traffic.

enum class Adversary { kNone, kEquivocate, kMixed };

std::vector<std::vector<std::pair<harness::Round, types::Hash>>> committed_sequences(
    harness::Protocol protocol, Adversary adversary, const PipelineOptions& pipeline,
    size_t threads = 1) {
  harness::ClusterOptions o;
  o.n = 7;
  o.t = 2;
  // Note: seed choices avoid a pre-existing (seed-dependent) Icc2 liveness
  // stall that exists independently of the pipeline; this test is about
  // determinism, the stall reproduces identically with the stages on or off.
  o.seed = 500 + static_cast<uint64_t>(adversary) * 17 + static_cast<uint64_t>(protocol);
  o.protocol = protocol;
  o.delta_bnd = sim::msec(120);
  o.payload_size = 300;
  o.pipeline = pipeline;
  o.threads = threads;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::UniformDelay>(sim::msec(3), sim::msec(18));
  };
  consensus::ByzantineBehavior eq;
  eq.equivocate = true;
  switch (adversary) {
    case Adversary::kNone: break;
    case Adversary::kEquivocate: o.corrupt = {{1, eq}, {4, eq}}; break;
    case Adversary::kMixed: o.corrupt = {{1, eq}, {4, harness::Crashed{}}}; break;
  }

  harness::Cluster c(o);
  c.run_for(sim::seconds(5));
  EXPECT_FALSE(c.check_safety().has_value());
  std::vector<std::vector<std::pair<harness::Round, types::Hash>>> out;
  for (size_t i = 0; i < o.n; ++i) {
    std::vector<std::pair<harness::Round, types::Hash>> seq;
    if (c.is_honest(i) && c.party(i)) {
      for (const auto& blk : c.party(i)->committed()) seq.emplace_back(blk.round, blk.hash);
      EXPECT_GE(seq.size(), 4u) << "party " << i << " barely progressed";
    }
    out.push_back(std::move(seq));
  }
  return out;
}

class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<harness::Protocol, Adversary>> {};

TEST_P(DeterminismTest, CommitSequenceIdenticalPipelineOnVsOff) {
  auto [protocol, adversary] = GetParam();
  PipelineOptions on;  // defaults: dedup + cache + batch
  PipelineOptions off;
  off.dedup = off.cache = off.batch = false;
  EXPECT_EQ(committed_sequences(protocol, adversary, on),
            committed_sequences(protocol, adversary, off));
}

// Thread-count axis of the same matrix: the multi-core runtime (DESIGN.md
// §6) must be behaviour-neutral too — the committed sequences of a 2- and
// 8-thread run are bit-identical to the 1-thread run, with the pipeline both
// on and off, under every adversary.
TEST_P(DeterminismTest, CommitSequenceIdenticalAcrossThreadCounts) {
  auto [protocol, adversary] = GetParam();
  PipelineOptions on;  // defaults: dedup + cache + batch
  auto baseline = committed_sequences(protocol, adversary, on, 1);
  for (size_t threads : {2u, 8u}) {
    EXPECT_EQ(committed_sequences(protocol, adversary, on, threads), baseline)
        << threads << " threads";
  }
  PipelineOptions off;
  off.dedup = off.cache = off.batch = false;
  EXPECT_EQ(committed_sequences(protocol, adversary, off, 8),
            committed_sequences(protocol, adversary, off, 1));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, DeterminismTest,
    ::testing::Combine(::testing::Values(harness::Protocol::kIcc0, harness::Protocol::kIcc1,
                                         harness::Protocol::kIcc2),
                       ::testing::Values(Adversary::kNone, Adversary::kEquivocate,
                                         Adversary::kMixed)),
    [](const auto& info) {
      const char* p = std::get<0>(info.param) == harness::Protocol::kIcc0   ? "Icc0"
                      : std::get<0>(info.param) == harness::Protocol::kIcc1 ? "Icc1"
                                                                            : "Icc2";
      const char* a = std::get<1>(info.param) == Adversary::kNone ? "None"
                      : std::get<1>(info.param) == Adversary::kEquivocate ? "Equivocate"
                                                                          : "Mixed";
      return std::string(p) + "_" + a;
    });

}  // namespace
}  // namespace icc::pipeline
