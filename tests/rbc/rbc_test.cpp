// Unit tests of the erasure-coded reliable broadcast (ICC2's subprotocol):
// validity, agreement on delivered bytes, totality with a partial dispersal,
// and rejection of malformed encodings.
#include "rbc/rbc.hpp"

#include <gtest/gtest.h>

#include "pipeline/verifier.hpp"
#include "sim/simulation.hpp"
#include "types/pool.hpp"

namespace icc::rbc {
namespace {

using types::Message;
using types::ProposalMsg;

/// A process that runs only the RBC layer and records deliveries.
class RbcProcess : public sim::Process {
 public:
  RbcProcess(crypto::CryptoProvider& crypto, sim::PartyIndex self)
      : verifier_(crypto, pipeline::PipelineOptions{}),
        rbc_(verifier_, self,
             [this](sim::Context&, const Bytes& raw) { delivered.push_back(raw); }) {}

  void start(sim::Context&) override {}
  void receive(sim::Context& ctx, sim::PartyIndex, BytesView payload) override {
    auto msg = types::parse_message(payload);
    if (!msg) return;
    if (auto* f = std::get_if<types::RbcFragmentMsg>(&*msg)) rbc_.on_fragment(ctx, *f);
  }

  RbcLayer& rbc() { return rbc_; }
  std::vector<Bytes> delivered;

 private:
  pipeline::Verifier verifier_;  // must outlive (and precede) rbc_
  RbcLayer rbc_;
};

struct Fixture {
  size_t n, t;
  std::unique_ptr<crypto::CryptoProvider> crypto;
  sim::Simulation sim;
  std::vector<RbcProcess*> procs;

  Fixture(size_t n_, size_t t_, uint64_t seed = 1)
      : n(n_),
        t(t_),
        crypto(crypto::make_fast_provider(n_, t_, seed)),
        sim(n_, std::make_unique<sim::FixedDelay>(sim::msec(5)), seed) {
    for (size_t i = 0; i < n; ++i) {
      auto p = std::make_unique<RbcProcess>(*crypto, static_cast<sim::PartyIndex>(i));
      procs.push_back(p.get());
      sim.network().set_process(static_cast<sim::PartyIndex>(i), std::move(p));
    }
    sim.start();
  }

  ProposalMsg make_proposal(size_t payload_size, sim::PartyIndex proposer = 0) {
    ProposalMsg pm;
    pm.block.round = 1;
    pm.block.proposer = proposer;
    pm.block.parent_hash = types::root_hash();
    pm.block.payload.assign(payload_size, 0xAB);
    pm.authenticator = crypto->sign(
        proposer, types::authenticator_message(1, proposer, pm.block.hash()));
    return pm;
  }
};

TEST(RbcTest, AllPartiesDeliverIdenticalBytes) {
  Fixture f(7, 2);
  auto pm = f.make_proposal(10000);
  Bytes expected = types::serialize_message(Message{pm});
  f.sim.engine().schedule_at(0, [&] {
    sim::Context ctx(f.sim.network(), 0);
    f.procs[0]->rbc().broadcast_block(ctx, pm);
  });
  f.sim.run_until(sim::seconds(1));
  for (size_t i = 0; i < f.n; ++i) {
    ASSERT_EQ(f.procs[i]->delivered.size(), 1u) << "party " << i;
    EXPECT_EQ(f.procs[i]->delivered[0], expected);
  }
}

TEST(RbcTest, DeliversExactlyOnce) {
  Fixture f(4, 1);
  auto pm = f.make_proposal(500);
  f.sim.engine().schedule_at(0, [&] {
    sim::Context ctx(f.sim.network(), 0);
    f.procs[0]->rbc().broadcast_block(ctx, pm);
    f.procs[0]->rbc().broadcast_block(ctx, pm);  // duplicate dispersal
  });
  f.sim.run_until(sim::seconds(1));
  for (size_t i = 0; i < f.n; ++i) EXPECT_EQ(f.procs[i]->delivered.size(), 1u);
}

TEST(RbcTest, ToleratesMissingEchoes) {
  // Crash t parties (they never echo); the rest must still deliver, since
  // n - t honest echoes >= k = n - 2t.
  Fixture f(7, 2);
  // Parties 5, 6 are crashed: replace with inert processes.
  for (sim::PartyIndex i = 5; i < 7; ++i) {
    class Inert : public sim::Process {
      void start(sim::Context&) override {}
      void receive(sim::Context&, sim::PartyIndex, BytesView) override {}
    };
    f.sim.network().set_process(i, std::make_unique<Inert>());
  }
  auto pm = f.make_proposal(5000);
  f.sim.engine().schedule_at(0, [&] {
    sim::Context ctx(f.sim.network(), 0);
    f.procs[0]->rbc().broadcast_block(ctx, pm);
  });
  f.sim.run_until(sim::seconds(1));
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(f.procs[i]->delivered.size(), 1u) << i;
}

TEST(RbcTest, TotalityFromPartialDispersal) {
  // A corrupt proposer sends fragments only to k parties; once those
  // reconstruct, their derived-fragment echoes let everyone deliver.
  Fixture f(7, 2);  // k = 3
  auto pm = f.make_proposal(3000);
  Bytes data = types::serialize_message(Message{pm});

  codec::ReedSolomon rs(3, 7);
  auto frags = rs.encode(data);
  std::vector<Bytes> leaves;
  for (const auto& fr : frags) leaves.push_back(fr.data);
  codec::MerkleTree tree(leaves);

  f.sim.engine().schedule_at(0, [&] {
    sim::Context ctx(f.sim.network(), 0);
    // Send fragments 1..3 to parties 1..3 only (proposer withholds the rest).
    for (uint32_t i = 1; i <= 3; ++i) {
      types::RbcFragmentMsg m;
      m.round = 1;
      m.proposer = 0;
      m.block_hash = pm.block.hash();
      m.merkle_root = tree.root();
      m.block_len = static_cast<uint32_t>(data.size());
      m.fragment_index = i;
      m.fragment = frags[i].data;
      m.merkle_proof = tree.prove(i).serialize();
      m.authenticator = pm.authenticator;
      ctx.send(i, types::serialize_message(Message{m}));
    }
  });
  f.sim.run_until(sim::seconds(2));
  for (size_t i = 0; i < f.n; ++i)
    EXPECT_EQ(f.procs[i]->delivered.size(), 1u) << "party " << i;
}

TEST(RbcTest, MalformedEncodingRejectedByAll) {
  // Fragments NOT on one degree-(k-1) polynomial, but individually committed
  // under a Merkle root: reconstruction must fail the re-encode check and no
  // party may deliver.
  Fixture f(4, 1);  // k = 2
  auto pm = f.make_proposal(100);
  Bytes data = types::serialize_message(Message{pm});

  codec::ReedSolomon rs(2, 4);
  auto frags = rs.encode(data);
  frags[3].data[0] ^= 0x55;  // break the codeword, then commit to the broken set
  std::vector<Bytes> leaves;
  for (const auto& fr : frags) leaves.push_back(fr.data);
  codec::MerkleTree tree(leaves);

  f.sim.engine().schedule_at(0, [&] {
    sim::Context ctx(f.sim.network(), 0);
    for (uint32_t i = 0; i < 4; ++i) {
      types::RbcFragmentMsg m;
      m.round = 1;
      m.proposer = 0;
      m.block_hash = pm.block.hash();
      m.merkle_root = tree.root();
      m.block_len = static_cast<uint32_t>(data.size());
      m.fragment_index = i;
      m.fragment = frags[i].data;
      m.merkle_proof = tree.prove(i).serialize();
      m.authenticator = pm.authenticator;
      ctx.send(i, types::serialize_message(Message{m}));
    }
  });
  f.sim.run_until(sim::seconds(2));
  for (size_t i = 0; i < f.n; ++i) {
    // Depending on which k fragments arrive first a party may reconstruct
    // data inconsistent with the commitment — either way nothing delivers.
    EXPECT_TRUE(f.procs[i]->delivered.empty()) << "party " << i;
  }
}

TEST(RbcTest, ForgedFragmentsIgnored) {
  Fixture f(4, 1);
  auto pm = f.make_proposal(100);
  f.sim.engine().schedule_at(0, [&] {
    sim::Context ctx(f.sim.network(), 1);  // party 1 forges on behalf of 0
    types::RbcFragmentMsg m;
    m.round = 1;
    m.proposer = 0;
    m.block_hash = pm.block.hash();
    m.merkle_root = types::root_hash();
    m.block_len = 100;
    m.fragment_index = 0;
    m.fragment = Bytes(50, 1);
    m.merkle_proof = codec::MerkleProof{}.serialize();
    m.authenticator = Bytes(64, 0);  // invalid signature
    ctx.broadcast(types::serialize_message(Message{m}));
  });
  f.sim.run_until(sim::seconds(1));
  for (size_t i = 0; i < f.n; ++i) EXPECT_TRUE(f.procs[i]->delivered.empty());
}

TEST(RbcTest, PerPartyTrafficIsLinearInBlockSize) {
  // O(S) per party: doubling S should roughly double max bytes sent, and the
  // proposer's share should be ~ S * n / k, far below n * S (direct push).
  auto run = [](size_t payload) {
    Fixture f(13, 4, 7);  // k = 5
    f.sim.network().set_frame_overhead(0);
    auto pm = f.make_proposal(payload);
    f.sim.engine().schedule_at(0, [&f, pm] {
      sim::Context ctx(f.sim.network(), 0);
      f.procs[0]->rbc().broadcast_block(ctx, pm);
    });
    f.sim.run_until(sim::seconds(2));
    return f.sim.network().metrics();
  };
  auto m1 = run(100 * 1024);
  auto m2 = run(200 * 1024);
  double ratio = static_cast<double>(m2.max_bytes_sent()) / m1.max_bytes_sent();
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 2.3);
  // Proposer sends n fragments of S/k (dispersal) plus its own fragment to
  // everyone (echo): ~ 2 * 13/5 * S ≈ 5.2 S — far from the 12 S direct push.
  EXPECT_LT(m1.bytes_sent[0], 6.0 * 100 * 1024);
}

}  // namespace
}  // namespace icc::rbc
