// Parallel engine stepping (DESIGN.md §6): with an attached Executor,
// same-timestamp events owned by distinct parties run concurrently between
// delivery barriers, yet every observable order — callback execution trace,
// deferred side effects, scheduling of follow-up events — must be identical
// to the sequential engine.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "support/defer.hpp"
#include "support/executor.hpp"

namespace icc::sim {
namespace {

// Drives a little scripted workload: n "parties" each start with an event at
// t=10; every owned event defers a record of (time, party, step) and
// schedules a follow-up for the same party; a kNoOwner barrier event fires
// between phases. Returns the deferred-effect trace.
std::vector<std::tuple<Time, uint32_t, int>> run_workload(support::Executor* ex) {
  Engine e;
  if (ex != nullptr) e.set_executor(ex);
  constexpr uint32_t kParties = 8;
  std::vector<std::tuple<Time, uint32_t, int>> trace;
  std::mutex trace_mu;  // defended, but replay should serialize anyway
  auto record = [&](uint32_t party, int step) {
    auto entry = std::make_tuple(e.now(), party, step);
    auto apply = [&trace, &trace_mu, entry] {
      std::lock_guard<std::mutex> lk(trace_mu);
      trace.push_back(entry);
    };
    if (!support::DeferQueue::maybe_defer(apply)) apply();
  };
  std::function<void(uint32_t, int)> step = [&](uint32_t party, int depth) {
    record(party, depth);
    if (depth < 3) {
      // Same-time follow-up plus a later one: exercises both intra-batch
      // scheduling and cross-batch id ordering.
      e.schedule_after(0, [&, party, depth] { step(party, depth + 10); }, party);
      e.schedule_after(5 + party % 3, [&, party, depth] { step(party, depth + 1); },
                       party);
    }
  };
  for (uint32_t p = 0; p < kParties; ++p) {
    e.schedule_at(10, [&, p] { step(p, 0); }, p);
  }
  e.schedule_at(12, [&] { record(999, -1); });  // unowned barrier event
  e.run();
  return trace;
}

TEST(EngineParallel, TraceMatchesSequentialAtAnyThreadCount) {
  auto sequential = run_workload(nullptr);
  ASSERT_FALSE(sequential.empty());
  for (size_t threads : {2u, 4u, 8u}) {
    support::Executor ex(threads);
    EXPECT_EQ(run_workload(&ex), sequential) << threads << " threads";
  }
}

TEST(EngineParallel, OwnedEventsAtSameTimeRunConcurrently) {
  // Sanity that parallelism actually happens: two owned events at one
  // timestamp rendezvous with each other — impossible sequentially.
  support::Executor ex(2);
  Engine e;
  e.set_executor(&ex);
  std::atomic<int> arrived{0};
  auto rendezvous = [&] {
    arrived.fetch_add(1);
    for (int spin = 0; spin < 100000 && arrived.load() < 2; ++spin)
      std::this_thread::yield();
    EXPECT_EQ(arrived.load(), 2);
  };
  e.schedule_at(10, rendezvous, /*owner=*/0);
  e.schedule_at(10, rendezvous, /*owner=*/1);
  e.run();
  EXPECT_EQ(arrived.load(), 2);
}

TEST(EngineParallel, SameOwnerEventsStaySequential) {
  // Events of one party never run concurrently with each other (party state
  // needs no locks): a same-owner group executes in order on one thread.
  support::Executor ex(4);
  Engine e;
  e.set_executor(&ex);
  std::vector<int> order;  // written by one thread only if the contract holds
  std::set<std::thread::id> tids;
  for (int i = 0; i < 6; ++i) {
    e.schedule_at(10, [&, i] {
      order.push_back(i);
      tids.insert(std::this_thread::get_id());
    }, /*owner=*/3);
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(tids.size(), 1u);
}

TEST(EngineParallel, CancelInsideBatchMatchesSequential) {
  // An owned event cancelling a same-time event of the same owner must see
  // the same semantics in both modes (the classic engine would erase it
  // before it runs).
  auto run = [](support::Executor* ex) {
    Engine e;
    if (ex != nullptr) e.set_executor(ex);
    std::vector<int> fired;
    auto mark = [&fired](int v) {
      auto apply = [&fired, v] { fired.push_back(v); };
      if (!support::DeferQueue::maybe_defer(apply)) apply();
    };
    EventId doomed = e.schedule_at(10, [&, mark] { mark(2); }, /*owner=*/1);
    e.schedule_at(10, [&, mark, doomed] {
      mark(1);
      e.cancel(doomed);
    }, /*owner=*/1);
    e.schedule_at(10, [mark] { mark(3); }, /*owner=*/2);
    e.run();
    return fired;
  };
  auto sequential = run(nullptr);
  support::Executor ex(4);
  EXPECT_EQ(run(&ex), sequential);
  EXPECT_EQ(sequential, (std::vector<int>{2, 1, 3}));
}

TEST(EngineParallel, DeadlineAndPendingBehaviourUnchanged) {
  support::Executor ex(4);
  Engine e;
  e.set_executor(&ex);
  int count = 0;
  for (uint32_t p = 0; p < 4; ++p)
    e.schedule_at(10 + p % 2, [&] { ++count; }, p);
  e.run_until(10);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(e.now(), 10);
  EXPECT_EQ(e.pending(), 2u);
  e.run_until(100);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(e.now(), 100);
}

}  // namespace
}  // namespace icc::sim
