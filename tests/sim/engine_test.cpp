#include "sim/engine.hpp"

#include <gtest/gtest.h>

namespace icc::sim {
namespace {

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(EngineTest, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) e.schedule_at(10, [&, i] { order.push_back(i); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, EventsScheduleEvents) {
  Engine e;
  std::vector<Time> times;
  e.schedule_at(5, [&] {
    times.push_back(e.now());
    e.schedule_after(7, [&] { times.push_back(e.now()); });
  });
  e.run();
  EXPECT_EQ(times, (std::vector<Time>{5, 12}));
}

TEST(EngineTest, PastSchedulesClampToNow) {
  Engine e;
  Time fired = -1;
  e.schedule_at(10, [&] {
    e.schedule_at(3, [&] { fired = e.now(); });  // in the past
  });
  e.run();
  EXPECT_EQ(fired, 10);
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine e;
  int count = 0;
  e.schedule_at(10, [&] { ++count; });
  e.schedule_at(20, [&] { ++count; });
  e.schedule_at(30, [&] { ++count; });
  e.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(e.now(), 20);
  e.run_until(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(e.now(), 100);  // advances to deadline even when idle
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  EventId id = e.schedule_at(10, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
}

TEST(EngineTest, CancelUnknownIdIsNoop) {
  Engine e;
  e.cancel(999);
  bool fired = false;
  e.schedule_at(1, [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
}

TEST(EngineTest, CancelAfterFireIsNoop) {
  Engine e;
  int count = 0;
  EventId id = e.schedule_at(1, [&] { ++count; });
  e.run();
  e.cancel(id);
  e.schedule_at(2, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 2);
}

TEST(EngineTest, CallbackStorageStaysBounded) {
  // Regression: callback storage used to be a grow-only vector (plus a
  // grow-only cancelled-id set), so a long-running simulation that keeps
  // scheduling-and-firing timers leaked memory linearly in event count.
  // Storage must now track only live (scheduled, not yet fired or
  // cancelled) callbacks.
  Engine e;
  constexpr int kRounds = 10000;
  int fired = 0;
  for (int i = 0; i < kRounds; ++i) {
    e.schedule_at(i, [&] { ++fired; });
    EventId doomed = e.schedule_at(i, [&] { ++fired; });
    e.cancel(doomed);  // cancellation must free the slot immediately
    EXPECT_LE(e.live_callbacks(), 2u);  // this round's pair at most
    e.run_until(i);
  }
  EXPECT_EQ(fired, kRounds);
  EXPECT_EQ(e.live_callbacks(), 0u);  // fully drained, nothing retained
}

TEST(EngineTest, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(1, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

}  // namespace
}  // namespace icc::sim
