#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace icc::sim {
namespace {

/// Records everything it receives; can echo on command.
class Recorder : public Process {
 public:
  struct Received {
    PartyIndex from;
    Bytes payload;
    Time at;
  };
  std::vector<Received> received;
  std::function<void(Context&)> on_start;

  void start(Context& ctx) override {
    if (on_start) on_start(ctx);
  }
  void receive(Context& ctx, PartyIndex from, BytesView payload) override {
    received.push_back({from, Bytes(payload.begin(), payload.end()), ctx.now()});
  }
};

struct Fixture {
  Simulation sim;
  std::vector<Recorder*> procs;

  explicit Fixture(size_t n, std::unique_ptr<DelayModel> model =
                                 std::make_unique<FixedDelay>(msec(10)))
      : sim(n, std::move(model), 42) {
    for (size_t i = 0; i < n; ++i) {
      auto p = std::make_unique<Recorder>();
      procs.push_back(p.get());
      sim.network().set_process(static_cast<PartyIndex>(i), std::move(p));
    }
  }
};

TEST(NetworkTest, BroadcastReachesEveryoneIncludingSelf) {
  Fixture f(4);
  f.procs[1]->on_start = [](Context& ctx) { ctx.broadcast(str_bytes("hello")); };
  f.sim.start();
  f.sim.run_until(seconds(1));
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(f.procs[i]->received.size(), 1u) << "party " << i;
    EXPECT_EQ(f.procs[i]->received[0].from, 1u);
    EXPECT_EQ(f.procs[i]->received[0].payload, str_bytes("hello"));
  }
  // Self-delivery at t=0; others at the fixed delay.
  EXPECT_EQ(f.procs[1]->received[0].at, 0);
  EXPECT_GE(f.procs[0]->received[0].at, msec(10));
}

TEST(NetworkTest, FixedDelayIsExact) {
  Fixture f(3);
  f.procs[0]->on_start = [](Context& ctx) { ctx.broadcast(str_bytes("x")); };
  f.sim.start();
  f.sim.run_until(seconds(1));
  EXPECT_EQ(f.procs[1]->received[0].at, msec(10));
  EXPECT_EQ(f.procs[2]->received[0].at, msec(10));
}

TEST(NetworkTest, PointToPointOnlyReachesTarget) {
  Fixture f(4);
  f.procs[2]->on_start = [](Context& ctx) { ctx.send(0, str_bytes("direct")); };
  f.sim.start();
  f.sim.run_until(seconds(1));
  EXPECT_EQ(f.procs[0]->received.size(), 1u);
  EXPECT_TRUE(f.procs[1]->received.empty());
  EXPECT_TRUE(f.procs[3]->received.empty());
  EXPECT_TRUE(f.procs[2]->received.empty());
}

TEST(NetworkTest, MetricsCountWireTraffic) {
  Fixture f(4);
  f.sim.network().set_frame_overhead(0);
  f.procs[0]->on_start = [](Context& ctx) { ctx.broadcast(Bytes(100, 7)); };
  f.sim.start();
  f.sim.run_until(seconds(1));
  const auto& m = f.sim.network().metrics();
  EXPECT_EQ(m.messages_sent[0], 3u);  // self-delivery is free
  EXPECT_EQ(m.bytes_sent[0], 300u);
  EXPECT_EQ(m.total_messages, 3u);
  EXPECT_EQ(m.max_bytes_sent(), 300u);
}

TEST(NetworkTest, FrameOverheadCounted) {
  Fixture f(2);
  f.sim.network().set_frame_overhead(64);
  f.procs[0]->on_start = [](Context& ctx) { ctx.send(1, Bytes(10, 1)); };
  f.sim.start();
  f.sim.run_until(seconds(1));
  EXPECT_EQ(f.sim.network().metrics().bytes_sent[0], 74u);
}

TEST(NetworkTest, AsyncWindowDelaysDelivery) {
  Fixture f(2);
  f.sim.network().synchrony().add_async_window(0, msec(500));
  f.procs[0]->on_start = [](Context& ctx) { ctx.send(1, str_bytes("held")); };
  f.sim.start();
  f.sim.run_until(seconds(2));
  ASSERT_EQ(f.procs[1]->received.size(), 1u);
  EXPECT_GE(f.procs[1]->received[0].at, msec(500));
}

TEST(NetworkTest, ChainedAsyncWindows) {
  SynchronySchedule s;
  s.add_async_window(0, 100);
  s.add_async_window(100, 200);
  EXPECT_EQ(s.release_time(50), 200);
  EXPECT_EQ(s.release_time(150), 200);
  EXPECT_EQ(s.release_time(250), 250);
  EXPECT_TRUE(s.is_async_at(50));
  EXPECT_FALSE(s.is_async_at(200));
}

TEST(NetworkTest, TimersFire) {
  Fixture f(1);
  Time fired = -1;
  f.procs[0]->on_start = [&](Context& ctx) {
    ctx.set_timer(msec(25), [&, t = &fired, now = ctx.now()] { *t = now + msec(25); });
  };
  f.sim.start();
  f.sim.run_until(seconds(1));
  EXPECT_EQ(fired, msec(25));
}

TEST(NetworkTest, WanDelayMatrixSymmetricAndBounded) {
  WanDelay::Config cfg;
  cfg.n = 10;
  cfg.seed = 7;
  WanDelay wan(cfg);
  for (PartyIndex i = 0; i < 10; ++i) {
    for (PartyIndex j = 0; j < 10; ++j) {
      if (i == j) continue;
      EXPECT_EQ(wan.base(i, j), wan.base(j, i));
      EXPECT_GE(wan.base(i, j), cfg.min_base);
      EXPECT_LE(wan.base(i, j), cfg.max_base);
    }
  }
  EXPECT_LE(wan.max_base(), cfg.max_base);
}

TEST(NetworkTest, WanDelayIncludesTransmissionTime) {
  WanDelay::Config cfg;
  cfg.n = 2;
  cfg.jitter = 0;
  cfg.loss_probability = 0;
  cfg.bandwidth_bytes_per_us = 100.0;
  WanDelay wan(cfg);
  Xoshiro256 rng(1);
  Duration small = wan.delay(0, 1, 0, 100, rng);
  Duration large = wan.delay(0, 1, 0, 1000000, rng);
  EXPECT_GT(large, small + usec(9000));  // ~10 ms of serialization at 100 B/us
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  auto run = [] {
    Fixture f(5, std::make_unique<UniformDelay>(msec(1), msec(50)));
    f.procs[0]->on_start = [](Context& ctx) { ctx.broadcast(str_bytes("m")); };
    f.sim.start();
    f.sim.run_until(seconds(1));
    std::vector<Time> times;
    for (auto* p : f.procs)
      for (const auto& r : p->received) times.push_back(r.at);
    return times;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace icc::sim
