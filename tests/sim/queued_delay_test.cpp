#include <gtest/gtest.h>

#include "sim/network.hpp"

namespace icc::sim {
namespace {

TEST(QueuedDelayTest, SingleSendIsTransmissionPlusPropagation) {
  QueuedDelay q(std::make_unique<FixedDelay>(msec(10)), 2, 10.0);  // 10 B/us
  Xoshiro256 rng(1);
  // 1000 bytes at 10 B/us = 100 us of wire time.
  EXPECT_EQ(q.delay(0, 1, 0, 1000, rng), msec(10) + usec(100));
}

TEST(QueuedDelayTest, BackToBackSendsSerialize) {
  QueuedDelay q(std::make_unique<FixedDelay>(0), 2, 10.0);
  Xoshiro256 rng(1);
  EXPECT_EQ(q.delay(0, 1, 0, 1000, rng), usec(100));
  // Second send at the same instant waits for the first upload.
  EXPECT_EQ(q.delay(0, 1, 0, 1000, rng), usec(200));
  EXPECT_EQ(q.delay(0, 1, 0, 1000, rng), usec(300));
}

TEST(QueuedDelayTest, QueueDrainsOverTime) {
  QueuedDelay q(std::make_unique<FixedDelay>(0), 2, 10.0);
  Xoshiro256 rng(1);
  q.delay(0, 1, 0, 1000, rng);  // busy until t = 100 us
  // At t = 50 us the uplink is mid-transfer: wait 50 us + own 100 us.
  EXPECT_EQ(q.delay(0, 1, usec(50), 1000, rng), usec(150));
  // Much later: no queueing.
  EXPECT_EQ(q.delay(0, 1, msec(10), 1000, rng), usec(100));
}

TEST(QueuedDelayTest, SendersHaveIndependentUplinks) {
  QueuedDelay q(std::make_unique<FixedDelay>(0), 3, 10.0);
  Xoshiro256 rng(1);
  q.delay(0, 1, 0, 10000, rng);                       // party 0 busy 1 ms
  EXPECT_EQ(q.delay(2, 1, 0, 1000, rng), usec(100));  // party 2 unaffected
}

TEST(QueuedDelayTest, BroadcastOfLargeBlockSerializesAcrossRecipients) {
  // The leader-bottleneck mechanism: one broadcast = n-1 sequential uploads.
  Engine engine;
  auto model = std::make_unique<QueuedDelay>(std::make_unique<FixedDelay>(msec(5)), 5,
                                             100.0);  // 100 B/us
  Network net(engine, 5, std::move(model), 7);
  net.set_frame_overhead(0);

  struct Recv : Process {
    Time at = -1;
    void start(Context&) override {}
    void receive(Context& ctx, PartyIndex, BytesView) override { at = ctx.now(); }
  };
  std::vector<Recv*> recv;
  for (PartyIndex i = 0; i < 5; ++i) {
    auto p = std::make_unique<Recv>();
    recv.push_back(p.get());
    net.set_process(i, std::move(p));
  }
  net.start_all();
  engine.schedule_at(0, [&] { net.broadcast(0, Bytes(100000, 1)); });  // 1 ms tx each
  engine.run();

  // Four recipients, uploads serialized: arrival at 1, 2, 3, 4 ms (+5 ms).
  std::vector<Time> times;
  for (PartyIndex i = 1; i < 5; ++i) times.push_back(recv[i]->at);
  std::sort(times.begin(), times.end());
  EXPECT_EQ(times[0], msec(6));
  EXPECT_EQ(times[3], msec(9));
}

}  // namespace
}  // namespace icc::sim
