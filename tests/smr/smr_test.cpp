// State machine replication over ICC: command encoding, queue semantics,
// the KV store, and a full end-to-end replication run where every replica
// converges to the same state digest.
#include "smr/smr.hpp"

#include <gtest/gtest.h>

#include "harness/cluster.hpp"

namespace icc::smr {
namespace {

TEST(PayloadTest, EncodeDecodeRoundTrip) {
  std::vector<Command> cmds = {KvStore::put(1, "a", "1"), KvStore::del(2, "b"),
                               Command{3, Bytes{0x7f, 0x00}}};
  auto decoded = decode_payload(encode_payload(cmds));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cmds);
}

TEST(PayloadTest, EmptyPayloadDecodesToNoCommands) {
  auto decoded = decode_payload(Bytes{});
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(PayloadTest, GarbageRejected) {
  EXPECT_FALSE(decode_payload(Bytes{1, 2, 3}).has_value());
  Bytes absurd;
  put_u32le(absurd, 0xffffffffu);
  EXPECT_FALSE(decode_payload(absurd).has_value());
}

TEST(KvStoreTest, PutGetDelete) {
  KvStore kv;
  kv.apply(KvStore::put(1, "key", "value"));
  EXPECT_EQ(kv.get("key"), "value");
  kv.apply(KvStore::put(2, "key", "value2"));
  EXPECT_EQ(kv.get("key"), "value2");
  kv.apply(KvStore::del(3, "key"));
  EXPECT_FALSE(kv.get("key").has_value());
  EXPECT_EQ(kv.applied_count(), 3u);
}

TEST(KvStoreTest, DigestTracksState) {
  KvStore a, b;
  EXPECT_EQ(a.digest(), b.digest());
  a.apply(KvStore::put(1, "x", "1"));
  EXPECT_NE(a.digest(), b.digest());
  b.apply(KvStore::put(99, "x", "1"));  // same state, different command id
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(KvStoreTest, MalformedCommandsAreDeterministicNoops) {
  KvStore a;
  a.apply(Command{1, Bytes{'P'}});        // truncated put
  a.apply(Command{2, Bytes{'Z', 1, 2}});  // unknown opcode
  a.apply(Command{3, Bytes{}});           // empty
  EXPECT_EQ(a.size(), 0u);
}

TEST(CommandQueueTest, BatchesAndRetires) {
  CommandQueue q;
  for (uint64_t i = 0; i < 5; ++i) q.submit(KvStore::put(i, "k" + std::to_string(i), "v"));
  std::vector<const types::Block*> chain;
  Bytes payload = q.build(1, 0, chain);
  auto cmds = decode_payload(payload);
  ASSERT_TRUE(cmds.has_value());
  EXPECT_EQ(cmds->size(), 5u);
  // Not retired yet: a rebuild still includes them (block may never commit).
  EXPECT_EQ(decode_payload(q.build(2, 0, chain))->size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) q.mark_committed(i);
  EXPECT_TRUE(decode_payload(q.build(3, 0, chain))->empty());
}

TEST(CommandQueueTest, DeduplicatesAgainstChain) {
  CommandQueue q;
  q.submit(KvStore::put(7, "a", "b"));
  // A chain block that already schedules id 7.
  types::Block b;
  b.round = 1;
  b.payload = encode_payload(std::vector<Command>{KvStore::put(7, "a", "b")});
  std::vector<const types::Block*> chain = {&b};
  EXPECT_TRUE(decode_payload(q.build(2, 0, chain))->empty());
  // Without that block it reappears.
  std::vector<const types::Block*> empty_chain;
  EXPECT_EQ(decode_payload(q.build(3, 0, empty_chain))->size(), 1u);
}

TEST(CommandQueueTest, RespectsByteLimit) {
  CommandQueue::Limits limits;
  limits.max_payload_bytes = 100;
  CommandQueue q(limits);
  for (uint64_t i = 0; i < 10; ++i) q.submit(Command{i, Bytes(30, 1)});
  std::vector<const types::Block*> chain;
  auto cmds = decode_payload(q.build(1, 0, chain));
  ASSERT_TRUE(cmds.has_value());
  EXPECT_LE(cmds->size(), 3u);
  EXPECT_GE(cmds->size(), 1u);
}

TEST(CommandQueueTest, DuplicateSubmitOfCommittedIdIgnored) {
  CommandQueue q;
  q.mark_committed(5);
  q.submit(Command{5, Bytes{1}});
  EXPECT_EQ(q.pending(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end replication
// ---------------------------------------------------------------------------

TEST(SmrEndToEndTest, ReplicasConvergeToSameState) {
  const size_t n = 4;
  std::vector<std::shared_ptr<CommandQueue>> queues;
  std::vector<std::shared_ptr<Replica>> replicas;
  for (size_t i = 0; i < n; ++i) {
    auto q = std::make_shared<CommandQueue>();
    queues.push_back(q);
    replicas.push_back(std::make_shared<Replica>(q, std::make_shared<KvStore>()));
  }

  harness::ClusterOptions o;
  o.n = n;
  o.t = 1;
  o.seed = 5;
  o.delta_bnd = sim::msec(100);
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  o.payload_factory = [&](sim::PartyIndex i) { return queues[i]; };
  o.on_commit = [&](sim::PartyIndex self, const consensus::CommittedBlock& b) {
    replicas[self]->on_commit(b);
  };
  harness::Cluster c(o);

  // Submit 100 commands to ALL parties (the paper's liveness notion needs
  // >= n - t receivers); ids are globally unique.
  for (uint64_t i = 0; i < 100; ++i) {
    auto cmd = KvStore::put(i, "key" + std::to_string(i % 10), "val" + std::to_string(i));
    for (size_t p = 0; p < n; ++p) replicas[p]->submit(cmd);
  }
  c.run_for(sim::seconds(10));

  EXPECT_FALSE(c.check_safety().has_value());
  // Every replica applied every command exactly once.
  for (size_t p = 0; p < n; ++p) {
    auto* kv = dynamic_cast<KvStore*>(&replicas[p]->state());
    ASSERT_NE(kv, nullptr);
    EXPECT_EQ(kv->applied_count(), 100u) << "replica " << p;
  }
  // And all states agree.
  auto d0 = dynamic_cast<KvStore&>(replicas[0]->state()).digest();
  for (size_t p = 1; p < n; ++p) {
    EXPECT_EQ(dynamic_cast<KvStore&>(replicas[p]->state()).digest(), d0);
  }
}

TEST(SmrEndToEndTest, CommandSubmittedToQuorumEventuallyCommits) {
  // Submit only to n - t parties; the command must still appear (P3-style
  // liveness: some honest leader will pick it up).
  const size_t n = 4;
  std::vector<std::shared_ptr<CommandQueue>> queues;
  std::vector<std::shared_ptr<Replica>> replicas;
  for (size_t i = 0; i < n; ++i) {
    auto q = std::make_shared<CommandQueue>();
    queues.push_back(q);
    replicas.push_back(std::make_shared<Replica>(q, std::make_shared<KvStore>()));
  }
  harness::ClusterOptions o;
  o.n = n;
  o.t = 1;
  o.seed = 6;
  o.delta_bnd = sim::msec(100);
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  o.payload_factory = [&](sim::PartyIndex i) { return queues[i]; };
  o.on_commit = [&](sim::PartyIndex self, const consensus::CommittedBlock& b) {
    replicas[self]->on_commit(b);
  };
  harness::Cluster c(o);

  auto cmd = KvStore::put(42, "answer", "42");
  for (size_t p = 0; p < 3; ++p) replicas[p]->submit(cmd);  // n - t = 3 parties
  c.run_for(sim::seconds(10));

  for (size_t p = 0; p < n; ++p) {
    EXPECT_EQ(dynamic_cast<KvStore&>(replicas[p]->state()).get("answer"), "42")
        << "replica " << p;
  }
}

}  // namespace
}  // namespace icc::smr
