#include "support/bytes.hpp"

#include <gtest/gtest.h>

namespace icc {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(b), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), b);
}

TEST(BytesTest, HexEmpty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, HexUppercaseAccepted) {
  EXPECT_EQ(from_hex("ABCD"), (Bytes{0xab, 0xcd}));
}

TEST(BytesTest, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, HexRejectsBadDigit) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(BytesTest, Concat) {
  Bytes a = {1, 2}, b = {3}, c = {};
  EXPECT_EQ(concat(a, b, c), (Bytes{1, 2, 3}));
}

TEST(BytesTest, U32RoundTrip) {
  Bytes out;
  put_u32le(out, 0xdeadbeef);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(get_u32le(out.data()), 0xdeadbeefu);
}

TEST(BytesTest, U64RoundTrip) {
  Bytes out;
  put_u64le(out, 0x0123456789abcdefULL);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(get_u64le(out.data()), 0x0123456789abcdefULL);
}

}  // namespace
}  // namespace icc
