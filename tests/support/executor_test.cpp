// Executor + DeferQueue: the two primitives under the deterministic
// multi-core runtime (DESIGN.md §6). The executor must run every index of a
// parallel_for exactly once (including nested and reentrant use); the defer
// queue must replay side effects in push order on the replaying thread.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "support/defer.hpp"
#include "support/executor.hpp"

namespace icc::support {
namespace {

TEST(Executor, RunsEveryIndexExactlyOnce) {
  Executor ex(4);
  EXPECT_EQ(ex.threads(), 4u);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  ex.parallel_for(kCount, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Executor, SingleThreadRunsInline) {
  Executor ex(1);
  EXPECT_EQ(ex.threads(), 1u);
  std::vector<size_t> order;
  ex.parallel_for(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(Executor, ZeroAndOneCountAreTrivial) {
  Executor ex(4);
  size_t calls = 0;
  ex.parallel_for(0, [&](size_t) { calls++; });
  EXPECT_EQ(calls, 0u);
  ex.parallel_for(1, [&](size_t i) {
    calls++;
    EXPECT_EQ(i, 0u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(Executor, SequentialBatchesReuseThePool) {
  Executor ex(3);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    ex.parallel_for(64, [&](size_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 50u * (63 * 64 / 2));
}

TEST(Executor, NestedParallelForCompletes) {
  // A body that itself calls parallel_for must not deadlock: waiting threads
  // steal slices from the inner batch instead of blocking.
  Executor ex(4);
  std::atomic<int> inner{0};
  ex.parallel_for(8, [&](size_t) {
    ex.parallel_for(8, [&](size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 64);
}

TEST(Executor, DefaultThreadsReadsEnv) {
  // Cannot mutate the environment of already-running pools, but the parser
  // itself is pure: exercise the clamp behaviour via a scoped setenv.
  ::setenv("ICC_THREADS", "3", 1);
  EXPECT_EQ(Executor::default_threads(), 3u);
  ::setenv("ICC_THREADS", "0", 1);
  EXPECT_EQ(Executor::default_threads(), 1u);
  ::setenv("ICC_THREADS", "garbage", 1);
  EXPECT_EQ(Executor::default_threads(), 1u);
  ::unsetenv("ICC_THREADS");
  EXPECT_EQ(Executor::default_threads(), 1u);
}

TEST(DeferQueue, MaybeDeferWithoutQueueRunsNothing) {
  // No queue installed: maybe_defer declines and the caller applies inline.
  int applied = 0;
  bool deferred = DeferQueue::maybe_defer([&] { applied++; });
  EXPECT_FALSE(deferred);
  EXPECT_EQ(applied, 0);  // maybe_defer never runs the closure itself
}

TEST(DeferQueue, ReplaysInPushOrder) {
  DeferQueue q;
  std::vector<int> order;
  {
    DeferQueue::Scope scope(&q);
    EXPECT_TRUE(DeferQueue::maybe_defer([&] { order.push_back(1); }));
    EXPECT_TRUE(DeferQueue::maybe_defer([&] { order.push_back(2); }));
    EXPECT_TRUE(DeferQueue::maybe_defer([&] { order.push_back(3); }));
    EXPECT_TRUE(order.empty());  // nothing ran yet
    EXPECT_EQ(q.size(), 3u);
  }
  // Scope uninstalled; replay happens wherever the coordinator chooses.
  q.replay();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(DeferQueue, ScopeRestoresPreviousQueue) {
  DeferQueue outer, inner;
  DeferQueue::Scope a(&outer);
  {
    DeferQueue::Scope b(&inner);
    DeferQueue::maybe_defer([] {});
    EXPECT_EQ(inner.size(), 1u);
  }
  DeferQueue::maybe_defer([] {});
  EXPECT_EQ(outer.size(), 1u);
  EXPECT_EQ(inner.size(), 1u);
}

TEST(Executor, DeferredEffectsFromWorkersReplayDeterministically) {
  // The engine's usage pattern: each parallel slot gets its own queue;
  // workers push effects concurrently; the coordinator replays queue-by-
  // queue in canonical order. The merged effect order must equal the
  // sequential order regardless of scheduling.
  Executor ex(4);
  constexpr size_t kSlots = 64;
  std::vector<DeferQueue> queues(kSlots);
  std::vector<size_t> effects;
  ex.parallel_for(kSlots, [&](size_t i) {
    DeferQueue::Scope scope(&queues[i]);
    DeferQueue::maybe_defer([&effects, i] { effects.push_back(2 * i); });
    DeferQueue::maybe_defer([&effects, i] { effects.push_back(2 * i + 1); });
  });
  for (auto& q : queues) q.replay();
  std::vector<size_t> want(2 * kSlots);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(effects, want);
}

}  // namespace
}  // namespace icc::support
