#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace icc {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkDecorrelates) {
  Xoshiro256 root(7);
  Xoshiro256 s1 = root.fork(1);
  Xoshiro256 s2 = root.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (s1.next() == s2.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowCoversRange) {
  Xoshiro256 rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UnitInHalfOpenInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BytesLengthAndDeterminism) {
  Xoshiro256 a(5), b(5);
  EXPECT_EQ(a.bytes(13), b.bytes(13));
  EXPECT_EQ(a.bytes(0).size(), 0u);
  EXPECT_EQ(a.bytes(32).size(), 32u);
}

}  // namespace
}  // namespace icc
