#include "support/serial.hpp"

#include <gtest/gtest.h>

namespace icc {
namespace {

TEST(SerialTest, IntegersRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(r.done());
}

TEST(SerialTest, BytesRoundTrip) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  r.expect_done();
}

TEST(SerialTest, RawFixedSize) {
  Writer w;
  w.raw(Bytes{9, 8, 7});
  Reader r(w.data());
  EXPECT_EQ(r.raw(3), (Bytes{9, 8, 7}));
}

TEST(SerialTest, TruncatedThrows) {
  Writer w;
  w.u32(5);
  Reader r(w.data());
  EXPECT_THROW(r.u64(), ParseError);
}

TEST(SerialTest, TruncatedBytesThrows) {
  Writer w;
  w.u32(100);  // length prefix promising 100 bytes that aren't there
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), ParseError);
}

TEST(SerialTest, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), ParseError);
}

TEST(SerialTest, EmptyBytesOk) {
  Writer w;
  w.bytes(Bytes{});
  Reader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace icc
