#include "types/block.hpp"

#include <gtest/gtest.h>

#include "types/messages.hpp"

namespace icc::types {
namespace {

Block sample_block() {
  Block b;
  b.round = 7;
  b.proposer = 3;
  b.parent_hash = crypto::Sha256::hash("parent");
  b.payload = str_bytes("some commands");
  return b;
}

TEST(BlockTest, SerializationRoundTrip) {
  Block b = sample_block();
  auto back = Block::deserialize(b.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, b);
}

TEST(BlockTest, HashIsStable) {
  Block b = sample_block();
  EXPECT_EQ(b.hash(), b.hash());
  EXPECT_EQ(b.hash(), Block::deserialize(b.serialize())->hash());
}

TEST(BlockTest, HashBindsEveryField) {
  Block b = sample_block();
  Hash h = b.hash();
  Block b2 = b;
  b2.round++;
  EXPECT_NE(b2.hash(), h);
  b2 = b;
  b2.proposer++;
  EXPECT_NE(b2.hash(), h);
  b2 = b;
  b2.parent_hash[0] ^= 1;
  EXPECT_NE(b2.hash(), h);
  b2 = b;
  b2.payload.push_back(0);
  EXPECT_NE(b2.hash(), h);
}

TEST(BlockTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Block::deserialize(Bytes{}).has_value());
  EXPECT_FALSE(Block::deserialize(Bytes{0x00, 0x01}).has_value());
  Block b = sample_block();
  Bytes enc = b.serialize();
  enc.push_back(0xff);  // trailing byte
  EXPECT_FALSE(Block::deserialize(enc).has_value());
}

TEST(BlockTest, SignedMessagesAreDomainSeparated) {
  Hash h = crypto::Sha256::hash("b");
  Bytes a = authenticator_message(1, 2, h);
  Bytes n = notarization_message(1, 2, h);
  Bytes f = finalization_message(1, 2, h);
  EXPECT_NE(a, n);
  EXPECT_NE(n, f);
  EXPECT_NE(a, f);
}

TEST(BlockTest, BeaconMessageBindsRoundAndPrev) {
  Bytes r0 = genesis_beacon();
  EXPECT_NE(beacon_message(1, r0), beacon_message(2, r0));
  Bytes other(32, 1);
  EXPECT_NE(beacon_message(1, r0), beacon_message(1, other));
}

TEST(MessagesTest, AllTypesRoundTrip) {
  Hash h = crypto::Sha256::hash("x");

  ProposalMsg p;
  p.block = sample_block();
  p.authenticator = Bytes(64, 1);
  p.parent_notarization = Bytes{9, 9};

  NotarizationShareMsg ns{4, 2, h, 1, Bytes(48, 2)};
  NotarizationMsg nm{4, 2, h, Bytes(48, 3)};
  FinalizationShareMsg fs{4, 2, h, 1, Bytes(48, 4)};
  FinalizationMsg fm{4, 2, h, Bytes(48, 5)};
  BeaconShareMsg bs{5, 3, Bytes(48, 6)};
  AdvertMsg ad{1, 4, h, 1000};
  RequestMsg rq{h};
  RbcFragmentMsg rf{4, 2, h, h, 1234, 5, Bytes(100, 7), Bytes(36, 8), Bytes(64, 9), Bytes{}};

  auto check = [](const Message& m) {
    Bytes wire = serialize_message(m);
    auto back = parse_message(wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(serialize_message(*back), wire);  // canonical round-trip
  };
  check(p);
  check(ns);
  check(nm);
  check(fs);
  check(fm);
  check(bs);
  check(ad);
  check(rq);
  check(rf);
}

TEST(MessagesTest, ParseRejectsUnknownTypeAndGarbage) {
  EXPECT_FALSE(parse_message(Bytes{}).has_value());
  EXPECT_FALSE(parse_message(Bytes{0xEE, 1, 2, 3}).has_value());
  // Truncated notarization share.
  NotarizationShareMsg ns{1, 0, crypto::Sha256::hash("x"), 0, Bytes(48, 1)};
  Bytes wire = serialize_message(Message{ns});
  wire.resize(wire.size() - 3);
  EXPECT_FALSE(parse_message(wire).has_value());
}

TEST(MessagesTest, ArtifactIdIsContentHash) {
  Bytes a = str_bytes("artifact");
  EXPECT_EQ(artifact_id(a), crypto::Sha256::hash(a));
}

}  // namespace
}  // namespace icc::types
