#include "types/pool.hpp"

#include <gtest/gtest.h>

namespace icc::types {
namespace {

/// Small fixture with a fast provider for n=4, t=1 and helpers to construct
/// fully-signed artifacts (playing all parties at once).
struct PoolFixture : ::testing::Test {
  std::unique_ptr<crypto::CryptoProvider> crypto_ =
      crypto::make_fast_provider(4, 1, 99);
  Pool pool{*crypto_};

  Block make_block(Round round, PartyIndex proposer, const Hash& parent,
                   std::string_view payload = "p") {
    Block b;
    b.round = round;
    b.proposer = proposer;
    b.parent_hash = parent;
    b.payload = str_bytes(payload);
    return b;
  }

  ProposalMsg make_proposal(const Block& b, const Bytes& parent_notarization = {}) {
    ProposalMsg m;
    m.block = b;
    m.authenticator =
        crypto_->sign(b.proposer, authenticator_message(b.round, b.proposer, b.hash()));
    m.parent_notarization = parent_notarization;
    return m;
  }

  NotarizationShareMsg make_notar_share(const Block& b, PartyIndex signer) {
    Bytes msg = notarization_message(b.round, b.proposer, b.hash());
    return {b.round, b.proposer, b.hash(), signer,
            crypto_->threshold_sign_share(crypto::Scheme::kNotary, signer, msg)};
  }

  NotarizationMsg make_notarization(const Block& b) {
    Bytes msg = notarization_message(b.round, b.proposer, b.hash());
    std::vector<std::pair<crypto::PartyIndex, Bytes>> shares;
    for (crypto::PartyIndex i = 0; i < crypto_->quorum(); ++i)
      shares.emplace_back(i, crypto_->threshold_sign_share(crypto::Scheme::kNotary, i, msg));
    return {b.round, b.proposer, b.hash(), crypto_->threshold_combine(
                                              crypto::Scheme::kNotary, msg, shares)};
  }

  FinalizationMsg make_finalization(const Block& b) {
    Bytes msg = finalization_message(b.round, b.proposer, b.hash());
    std::vector<std::pair<crypto::PartyIndex, Bytes>> shares;
    for (crypto::PartyIndex i = 0; i < crypto_->quorum(); ++i)
      shares.emplace_back(i, crypto_->threshold_sign_share(crypto::Scheme::kFinal, i, msg));
    return {b.round, b.proposer, b.hash(), crypto_->threshold_combine(
                                              crypto::Scheme::kFinal, msg, shares)};
  }
};

TEST_F(PoolFixture, RootIsAlwaysNotarizedAndFinalized) {
  EXPECT_TRUE(pool.is_notarized(root_hash()));
  EXPECT_TRUE(pool.is_finalized(root_hash()));
  EXPECT_EQ(pool.notarized_blocks_at(0), std::vector<Hash>{root_hash()});
}

TEST_F(PoolFixture, ProposalWithValidAuthenticatorAccepted) {
  Block b = make_block(1, 0, root_hash());
  EXPECT_TRUE(pool.add_proposal(make_proposal(b)));
  EXPECT_TRUE(pool.is_authentic(b.hash()));
  EXPECT_TRUE(pool.is_valid(b.hash()));  // round-1 child of root
  EXPECT_FALSE(pool.is_notarized(b.hash()));
}

TEST_F(PoolFixture, ProposalWithBadAuthenticatorDropped) {
  Block b = make_block(1, 0, root_hash());
  ProposalMsg m = make_proposal(b);
  m.authenticator[0] ^= 1;
  EXPECT_FALSE(pool.add_proposal(m));
  EXPECT_EQ(pool.block(b.hash()), nullptr);
}

TEST_F(PoolFixture, AuthenticatorBySomeoneElseDropped) {
  Block b = make_block(1, 0, root_hash());
  ProposalMsg m;
  m.block = b;
  // Party 1 signs a block claiming proposer 0.
  m.authenticator = crypto_->sign(1, authenticator_message(1, 0, b.hash()));
  EXPECT_FALSE(pool.add_proposal(m));
}

TEST_F(PoolFixture, ValidityRequiresNotarizedParent) {
  Block parent = make_block(1, 0, root_hash());
  Block child = make_block(2, 1, parent.hash());
  pool.add_proposal(make_proposal(parent));
  pool.add_proposal(make_proposal(child));
  EXPECT_TRUE(pool.is_authentic(child.hash()));
  EXPECT_FALSE(pool.is_valid(child.hash()));  // parent not notarized yet
  pool.add_notarization(make_notarization(parent));
  EXPECT_TRUE(pool.is_valid(child.hash()));
  EXPECT_TRUE(pool.is_notarized(parent.hash()));
}

TEST_F(PoolFixture, BundledParentNotarizationProcessed) {
  Block parent = make_block(1, 0, root_hash());
  Block child = make_block(2, 1, parent.hash());
  pool.add_proposal(make_proposal(parent));
  Bytes bundled = serialize_message(Message{make_notarization(parent)});
  pool.add_proposal(make_proposal(child, bundled));
  EXPECT_TRUE(pool.is_valid(child.hash()));
}

TEST_F(PoolFixture, WrongRoundParentRejected) {
  Block parent = make_block(1, 0, root_hash());
  pool.add_proposal(make_proposal(parent));
  pool.add_notarization(make_notarization(parent));
  Block bad = make_block(3, 1, parent.hash());  // skips round 2
  pool.add_proposal(make_proposal(bad));
  EXPECT_FALSE(pool.is_valid(bad.hash()));
}

TEST_F(PoolFixture, NotarizationShareAccountingAndCombinable) {
  Block b = make_block(1, 0, root_hash());
  pool.add_proposal(make_proposal(b));
  EXPECT_FALSE(pool.combinable_notarization_at(1).has_value());
  pool.add_notarization_share(make_notar_share(b, 0));
  pool.add_notarization_share(make_notar_share(b, 1));
  EXPECT_FALSE(pool.combinable_notarization_at(1).has_value());  // quorum = 3
  pool.add_notarization_share(make_notar_share(b, 2));
  auto h = pool.combinable_notarization_at(1);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(*h, b.hash());
  EXPECT_EQ(pool.notarization_shares(b).size(), 3u);
}

TEST_F(PoolFixture, DuplicateSharesIgnored) {
  Block b = make_block(1, 0, root_hash());
  pool.add_proposal(make_proposal(b));
  EXPECT_TRUE(pool.add_notarization_share(make_notar_share(b, 0)));
  EXPECT_FALSE(pool.add_notarization_share(make_notar_share(b, 0)));
  EXPECT_EQ(pool.notarization_shares(b).size(), 1u);
}

TEST_F(PoolFixture, InvalidShareRejected) {
  Block b = make_block(1, 0, root_hash());
  pool.add_proposal(make_proposal(b));
  auto share = make_notar_share(b, 0);
  share.share[0] ^= 1;
  EXPECT_FALSE(pool.add_notarization_share(share));
  // A share claiming the wrong signer is also rejected.
  auto share2 = make_notar_share(b, 1);
  share2.signer = 2;
  EXPECT_FALSE(pool.add_notarization_share(share2));
}

TEST_F(PoolFixture, FinalizationFlow) {
  Block b = make_block(1, 0, root_hash());
  pool.add_proposal(make_proposal(b));
  pool.add_notarization(make_notarization(b));
  EXPECT_FALSE(pool.is_finalized(b.hash()));
  pool.add_finalization(make_finalization(b));
  EXPECT_TRUE(pool.is_finalized(b.hash()));
  auto f = pool.finalized_above(0);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, b.hash());
  EXPECT_FALSE(pool.finalized_above(1).has_value());
}

TEST_F(PoolFixture, ChainToWalksAncestry) {
  Block b1 = make_block(1, 0, root_hash());
  Block b2 = make_block(2, 1, b1.hash());
  Block b3 = make_block(3, 2, b2.hash());
  pool.add_proposal(make_proposal(b1));
  pool.add_notarization(make_notarization(b1));
  pool.add_proposal(make_proposal(b2));
  pool.add_notarization(make_notarization(b2));
  pool.add_proposal(make_proposal(b3));

  auto chain = pool.chain_to(b3.hash());
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0]->round, 1u);
  EXPECT_EQ(chain[2]->round, 3u);

  auto suffix = pool.chain_to(b3.hash(), 1);
  ASSERT_EQ(suffix.size(), 2u);
  EXPECT_EQ(suffix[0]->round, 2u);
}

TEST_F(PoolFixture, PruneDropsOldBlocksKeepsNotarizations) {
  Block b1 = make_block(1, 0, root_hash());
  Block b2 = make_block(2, 1, b1.hash());
  pool.add_proposal(make_proposal(b1));
  pool.add_notarization(make_notarization(b1));
  pool.add_proposal(make_proposal(b2));
  EXPECT_TRUE(pool.is_valid(b2.hash()));

  pool.prune_below(2);
  EXPECT_EQ(pool.block(b1.hash()), nullptr);
  EXPECT_NE(pool.block(b2.hash()), nullptr);
  // Validity of the survivor is preserved (cache + retained notarization).
  EXPECT_TRUE(pool.is_valid(b2.hash()));
}

TEST_F(PoolFixture, EquivocatingBlocksBothTracked) {
  Block a = make_block(1, 0, root_hash(), "a");
  Block b = make_block(1, 0, root_hash(), "b");
  pool.add_proposal(make_proposal(a));
  pool.add_proposal(make_proposal(b));
  EXPECT_EQ(pool.valid_blocks_at(1).size(), 2u);
}

}  // namespace
}  // namespace icc::types
