#include "types/pool.hpp"

#include <gtest/gtest.h>

namespace icc::types {
namespace {

/// The pool is a pure data structure under the pre-verified contract: it
/// never checks signatures, so these tests build artifacts with dummy
/// signature bytes and exercise only structural behaviour (classification,
/// share accounting, ancestry walks, pruning). Signature rejection is
/// covered by the ingress pipeline tests (tests/pipeline/).
struct PoolFixture : ::testing::Test {
  static constexpr size_t kN = 4;
  static constexpr size_t kQuorum = 3;  // n - t with t = 1
  Pool pool{kN, kQuorum};

  Block make_block(Round round, PartyIndex proposer, const Hash& parent,
                   std::string_view payload = "p") {
    Block b;
    b.round = round;
    b.proposer = proposer;
    b.parent_hash = parent;
    b.payload = str_bytes(payload);
    return b;
  }

  ProposalMsg make_proposal(const Block& b) {
    ProposalMsg m;
    m.block = b;
    m.authenticator = str_bytes("auth");  // pre-verified upstream
    return m;
  }

  NotarizationShareMsg make_notar_share(const Block& b, PartyIndex signer) {
    return {b.round, b.proposer, b.hash(), signer, str_bytes("share")};
  }

  NotarizationMsg make_notarization(const Block& b) {
    return {b.round, b.proposer, b.hash(), str_bytes("agg-notar")};
  }

  FinalizationMsg make_finalization(const Block& b) {
    return {b.round, b.proposer, b.hash(), str_bytes("agg-final")};
  }
};

TEST_F(PoolFixture, RootIsAlwaysNotarizedAndFinalized) {
  EXPECT_TRUE(pool.is_notarized(root_hash()));
  EXPECT_TRUE(pool.is_finalized(root_hash()));
  EXPECT_EQ(pool.notarized_blocks_at(0), std::vector<Hash>{root_hash()});
}

TEST_F(PoolFixture, ProposalAccepted) {
  Block b = make_block(1, 0, root_hash());
  EXPECT_TRUE(pool.add_proposal(make_proposal(b)));
  EXPECT_TRUE(pool.is_authentic(b.hash()));
  EXPECT_TRUE(pool.is_valid(b.hash()));  // round-1 child of root
  EXPECT_FALSE(pool.is_notarized(b.hash()));
  // Exact duplicate is a no-op.
  EXPECT_FALSE(pool.add_proposal(make_proposal(b)));
}

TEST_F(PoolFixture, StructuralGuards) {
  // Proposer index out of range.
  Block b = make_block(1, kN, root_hash());
  EXPECT_FALSE(pool.add_proposal(make_proposal(b)));
  // Round 0 is reserved for the root.
  Block r0 = make_block(0, 0, root_hash());
  EXPECT_FALSE(pool.add_proposal(make_proposal(r0)));
  // Share with out-of-range signer.
  Block ok = make_block(1, 0, root_hash());
  pool.add_proposal(make_proposal(ok));
  auto share = make_notar_share(ok, 0);
  share.signer = kN;
  EXPECT_FALSE(pool.add_notarization_share(share));
}

TEST_F(PoolFixture, ValidityRequiresNotarizedParent) {
  Block parent = make_block(1, 0, root_hash());
  Block child = make_block(2, 1, parent.hash());
  pool.add_proposal(make_proposal(parent));
  pool.add_proposal(make_proposal(child));
  EXPECT_TRUE(pool.is_authentic(child.hash()));
  EXPECT_FALSE(pool.is_valid(child.hash()));  // parent not notarized yet
  pool.add_notarization(make_notarization(parent));
  EXPECT_TRUE(pool.is_valid(child.hash()));
  EXPECT_TRUE(pool.is_notarized(parent.hash()));
}

TEST_F(PoolFixture, WrongRoundParentRejected) {
  Block parent = make_block(1, 0, root_hash());
  pool.add_proposal(make_proposal(parent));
  pool.add_notarization(make_notarization(parent));
  Block bad = make_block(3, 1, parent.hash());  // skips round 2
  pool.add_proposal(make_proposal(bad));
  EXPECT_FALSE(pool.is_valid(bad.hash()));
}

TEST_F(PoolFixture, NotarizationShareAccountingAndCombinable) {
  Block b = make_block(1, 0, root_hash());
  pool.add_proposal(make_proposal(b));
  EXPECT_FALSE(pool.combinable_notarization_at(1).has_value());
  pool.add_notarization_share(make_notar_share(b, 0));
  pool.add_notarization_share(make_notar_share(b, 1));
  EXPECT_FALSE(pool.combinable_notarization_at(1).has_value());  // quorum = 3
  pool.add_notarization_share(make_notar_share(b, 2));
  auto h = pool.combinable_notarization_at(1);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(*h, b.hash());
  EXPECT_EQ(pool.notarization_shares(b).size(), 3u);
}

TEST_F(PoolFixture, DuplicateSharesIgnored) {
  Block b = make_block(1, 0, root_hash());
  pool.add_proposal(make_proposal(b));
  EXPECT_TRUE(pool.add_notarization_share(make_notar_share(b, 0)));
  EXPECT_FALSE(pool.add_notarization_share(make_notar_share(b, 0)));
  EXPECT_EQ(pool.notarization_shares(b).size(), 1u);
}

TEST_F(PoolFixture, FinalizationFlow) {
  Block b = make_block(1, 0, root_hash());
  pool.add_proposal(make_proposal(b));
  pool.add_notarization(make_notarization(b));
  EXPECT_FALSE(pool.is_finalized(b.hash()));
  pool.add_finalization(make_finalization(b));
  EXPECT_TRUE(pool.is_finalized(b.hash()));
  auto f = pool.finalized_above(0);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, b.hash());
  EXPECT_FALSE(pool.finalized_above(1).has_value());
}

TEST_F(PoolFixture, ChainToWalksAncestry) {
  Block b1 = make_block(1, 0, root_hash());
  Block b2 = make_block(2, 1, b1.hash());
  Block b3 = make_block(3, 2, b2.hash());
  pool.add_proposal(make_proposal(b1));
  pool.add_notarization(make_notarization(b1));
  pool.add_proposal(make_proposal(b2));
  pool.add_notarization(make_notarization(b2));
  pool.add_proposal(make_proposal(b3));

  auto chain = pool.chain_to(b3.hash());
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0]->round, 1u);
  EXPECT_EQ(chain[2]->round, 3u);

  auto suffix = pool.chain_to(b3.hash(), 1);
  ASSERT_EQ(suffix.size(), 2u);
  EXPECT_EQ(suffix[0]->round, 2u);
}

TEST_F(PoolFixture, PruneDropsOldBlocksAndAggregates) {
  Block b1 = make_block(1, 0, root_hash());
  Block b2 = make_block(2, 1, b1.hash());
  pool.add_proposal(make_proposal(b1));
  pool.add_notarization(make_notarization(b1));
  pool.add_proposal(make_proposal(b2));
  EXPECT_TRUE(pool.is_valid(b2.hash()));

  pool.prune_below(2);
  EXPECT_EQ(pool.block(b1.hash()), nullptr);
  EXPECT_NE(pool.block(b2.hash()), nullptr);
  // The pruned round's aggregate goes with its block: soak runs would
  // otherwise accrete one notarization per round forever.
  EXPECT_EQ(pool.notarization_for(b1.hash()), nullptr);
  EXPECT_TRUE(pool.notarized_blocks_at(1).empty());
  // Validity of the survivor is preserved via the cached verdict.
  EXPECT_TRUE(pool.is_valid(b2.hash()));
}

TEST_F(PoolFixture, PruneDropsStaleValidityVerdicts) {
  // Regression: cached validity of a pruned block must not survive the
  // prune. If the same block bytes are replayed after its ancestry is gone,
  // the pool must re-derive validity (and fail, since the parent block is no
  // longer present) rather than resurrect the stale cached verdict.
  Block b1 = make_block(1, 0, root_hash());
  Block b2 = make_block(2, 1, b1.hash());
  pool.add_proposal(make_proposal(b1));
  pool.add_notarization(make_notarization(b1));
  pool.add_proposal(make_proposal(b2));
  pool.add_notarization(make_notarization(b2));
  ASSERT_TRUE(pool.is_valid(b1.hash()));  // populate the validity cache
  ASSERT_TRUE(pool.is_valid(b2.hash()));

  pool.prune_below(3);  // drops both blocks and their aggregates
  EXPECT_EQ(pool.block(b2.hash()), nullptr);

  // Replay b2's proposal alone: its parent block b1 is gone, so validity
  // cannot be established. Before the fix the stale cache said "valid".
  pool.add_proposal(make_proposal(b2));
  EXPECT_FALSE(pool.is_valid(b2.hash()));
}

TEST_F(PoolFixture, EquivocatingBlocksBothTracked) {
  Block a = make_block(1, 0, root_hash(), "a");
  Block b = make_block(1, 0, root_hash(), "b");
  pool.add_proposal(make_proposal(a));
  pool.add_proposal(make_proposal(b));
  EXPECT_EQ(pool.valid_blocks_at(1).size(), 2u);
}

TEST_F(PoolFixture, CheckpointInstallForcesValidity) {
  // A checkpoint block's ancestry is absent by construction; install must
  // mark it valid so later rounds can chain off it.
  Block far = make_block(50, 2, Hash{});  // unknown parent
  auto pm = make_proposal(far);
  EXPECT_TRUE(pool.install_checkpoint(pm, make_notarization(far), make_finalization(far)));
  EXPECT_TRUE(pool.is_valid(far.hash()));
  EXPECT_TRUE(pool.is_notarized(far.hash()));
  EXPECT_TRUE(pool.is_finalized(far.hash()));
  // Hash disagreement between pieces is rejected.
  Block other = make_block(51, 3, far.hash());
  auto bad_notar = make_notarization(other);
  EXPECT_FALSE(pool.install_checkpoint(pm, bad_notar, make_finalization(far)));
}

}  // namespace
}  // namespace icc::types
