// icc_audit: offline safety auditor for consensus flight-recorder journals.
//
// Reads a JSONL journal produced by the obs::Journal (harness::Cluster with
// ClusterOptions::obs.journal, or examples/icc_observe --journal), replays
// it through obs::audit_journal, and prints a machine-readable run report.
//
//   icc_audit <journal.jsonl> [--report <out.json>] [--csv <out.csv>] [--quiet]
//
// Exit status: 0 when every invariant holds, 1 on any violation (the report
// names the invariant), 2 on usage/I/O errors. See obs/audit.hpp for the
// invariant-to-lemma mapping.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/audit.hpp"

namespace {

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

int usage() {
  std::fprintf(stderr,
               "usage: icc_audit <journal.jsonl> [--report <out.json>] "
               "[--csv <out.csv>] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path;
  std::string report_path;
  std::string csv_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (journal_path.empty()) {
      journal_path = argv[i];
    } else {
      return usage();
    }
  }
  if (journal_path.empty()) return usage();

  std::ifstream in(journal_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "icc_audit: cannot open %s\n", journal_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  icc::obs::AuditReport report = icc::obs::audit_jsonl(buf.str());

  if (!quiet) std::printf("%s\n", report.to_json().c_str());
  if (!report_path.empty() && !write_file(report_path, report.to_json() + "\n")) {
    std::fprintf(stderr, "icc_audit: cannot write %s\n", report_path.c_str());
    return 2;
  }
  if (!csv_path.empty() && !write_file(csv_path, report.rounds_csv())) {
    std::fprintf(stderr, "icc_audit: cannot write %s\n", csv_path.c_str());
    return 2;
  }

  if (!report.ok()) {
    for (const auto& v : report.violations)
      std::fprintf(stderr, "icc_audit: VIOLATION %s round %llu: %s\n",
                   v.invariant.c_str(), static_cast<unsigned long long>(v.round),
                   v.detail.c_str());
    return 1;
  }
  return 0;
}
