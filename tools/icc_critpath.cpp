// icc_critpath: offline critical-path analyzer for consensus journals.
//
// Reads a JSONL journal recorded with the causal layer (icc-journal/v2:
// harness::Cluster with ClusterOptions::obs.journal, or
// examples/icc_observe --journal), reconstructs the cross-party
// happens-before DAG, and extracts the critical path of every finalized
// round from the leader's propose to the first finalized event, decomposing
// commit latency into network / crypto / queue time (obs/causal.hpp).
//
//   icc_critpath <journal.jsonl> [--report <out.json>] [--dot <out.dot>]
//                [--dot-round <r>] [--check-hops [n]] [--quiet]
//
//   --report      write the icc-critpath/v1 JSON report
//   --dot         write a Graphviz DAG of one round, critical path in red
//   --dot-round   round to render (default: the first complete round)
//   --check-hops  structural check: every complete round must have exactly
//                 n network hops on its critical path. Without a value, n
//                 comes from the journal's protocol (icc0/icc1 → 3,
//                 icc2 → 4 — the paper's 3δ/4δ claims).
//
// Exit status: 0 ok, 1 on a causal-validation error (named on stderr) or a
// failed --check-hops, 2 on usage/I/O errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/causal.hpp"

namespace {

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

int usage() {
  std::fprintf(stderr,
               "usage: icc_critpath <journal.jsonl> [--report <out.json>] "
               "[--dot <out.dot>] [--dot-round <r>] [--check-hops [n]] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path, report_path, dot_path;
  uint64_t dot_round = 0;
  bool have_dot_round = false;
  bool check_hops = false;
  int expected_hops = -1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dot") == 0 && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dot-round") == 0 && i + 1 < argc) {
      dot_round = std::strtoull(argv[++i], nullptr, 10);
      have_dot_round = true;
    } else if (std::strcmp(argv[i], "--check-hops") == 0) {
      check_hops = true;
      if (i + 1 < argc && argv[i + 1][0] >= '0' && argv[i + 1][0] <= '9')
        expected_hops = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (journal_path.empty()) {
      journal_path = argv[i];
    } else {
      return usage();
    }
  }
  if (journal_path.empty()) return usage();

  std::ifstream in(journal_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "icc_critpath: cannot open %s\n", journal_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  icc::obs::CausalAnalyzer analyzer(icc::obs::Journal::parse_jsonl(buf.str()));
  const icc::obs::CritPathReport& report = analyzer.report();

  if (!quiet) std::printf("%s\n", report.to_json().c_str());
  if (!report_path.empty() && !write_file(report_path, report.to_json() + "\n")) {
    std::fprintf(stderr, "icc_critpath: cannot write %s\n", report_path.c_str());
    return 2;
  }

  if (!report.error.empty()) {
    std::fprintf(stderr, "icc_critpath: REJECTED %s\n", report.error.c_str());
    return 1;
  }

  if (!dot_path.empty()) {
    if (!have_dot_round) {
      for (const icc::obs::RoundPath& rp : report.rounds)
        if (rp.complete) {
          dot_round = rp.round;
          have_dot_round = true;
          break;
        }
    }
    if (!have_dot_round) {
      std::fprintf(stderr, "icc_critpath: no complete round to render\n");
      return 1;
    }
    if (!write_file(dot_path, analyzer.to_dot(dot_round))) {
      std::fprintf(stderr, "icc_critpath: cannot write %s\n", dot_path.c_str());
      return 2;
    }
  }

  if (check_hops) {
    int expect = expected_hops >= 0
                     ? expected_hops
                     : icc::obs::CritPathReport::expected_hops(report.meta.protocol);
    if (expect < 0) {
      std::fprintf(stderr,
                   "icc_critpath: --check-hops needs a value (protocol \"%s\" has no "
                   "known hop count)\n",
                   report.meta.protocol.c_str());
      return 2;
    }
    std::string violation;
    if (!report.check_hops(expect, &violation)) {
      std::fprintf(stderr, "icc_critpath: HOP-CHECK FAILED %s\n", violation.c_str());
      return 1;
    }
    if (!quiet)
      std::fprintf(stderr, "icc_critpath: hop check ok (%llu complete rounds, %d hops)\n",
                   static_cast<unsigned long long>(report.rounds_complete), expect);
  }
  return 0;
}
