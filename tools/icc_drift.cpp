// icc_drift: offline trend analyzer for icc-series/v1 longitudinal telemetry.
//
// Reads a windowed time-series stream (examples/icc_soak, icc_observe
// --series, or Cluster::dump_series) and looks for the slow failures a
// single end-of-run snapshot cannot see:
//
//   rss          Theil-Sen (median-of-pairwise-slopes) regression on the
//                non-deterministic wall lines' RSS. Robust to GC-style
//                steps and one-off spikes; fails when the projected growth
//                over the observed span leaves the band
//                max(64 MiB, 25% of the median RSS). Skipped when the
//                series was recorded without wall lines (--no-wall).
//   latency      First-k vs last-k creep on the per-window commit-latency
//                percentiles (consensus.finalize_us): fails when the tail
//                median of window p50s (or p99s) exceeds the head median by
//                more than 25% and by an absolute 1 ms floor.
//   leaders      Chi-square uniformity test on honest-leader frequency.
//                The beacon permutes leadership uniformly, so a biased
//                beacon (or a broken permutation) shows up as a p-value
//                collapse; fails at p < 1e-3. Corrupt slots (from the meta
//                line) are excluded.
//   finalize_gap Head vs tail trend on the mean finalize-gap (rounds
//                between notarization and finalization): fails when the
//                tail mean exceeds the head mean by 50% and by 0.5 rounds.
//
// Detectors without enough data report "skipped", never "fail".
//
//   icc_drift <series.jsonl> [--check] [--quiet] [--head-tail <k>]
//
// stdout is always one icc-drift/v1 JSON document; the human-readable
// summary goes to stderr unless --quiet. Exit status: 0 on success, 1 when
// --check is set and any detector failed (the summary names it), 2 on
// usage/I/O errors or malformed/truncated series input.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: icc_drift <series.jsonl> [--check] [--quiet] [--head-tail <k>]\n");
  return 2;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid) - 1,
                     v.begin() + static_cast<ptrdiff_t>(mid));
    m = (m + v[mid - 1]) / 2.0;
  }
  return m;
}

/// Theil-Sen estimator: median of all pairwise slopes. Subsamples evenly to
/// at most 1024 points so the pair count stays bounded on huge series.
double theil_sen_slope(const std::vector<std::pair<double, double>>& pts_in) {
  std::vector<std::pair<double, double>> pts;
  if (pts_in.size() > 1024) {
    const double step = static_cast<double>(pts_in.size() - 1) / 1023.0;
    for (size_t i = 0; i < 1024; ++i)
      pts.push_back(pts_in[static_cast<size_t>(std::lround(step * static_cast<double>(i)))]);
  } else {
    pts = pts_in;
  }
  std::vector<double> slopes;
  slopes.reserve(pts.size() * (pts.size() - 1) / 2);
  for (size_t i = 0; i < pts.size(); ++i)
    for (size_t j = i + 1; j < pts.size(); ++j) {
      const double dx = pts[j].first - pts[i].first;
      if (dx != 0.0) slopes.push_back((pts[j].second - pts[i].second) / dx);
    }
  return median(std::move(slopes));
}

/// Regularized upper incomplete gamma Q(a, x) — the chi-square survival
/// function is Q(df/2, chi2/2). Series expansion below a+1, Lentz continued
/// fraction above (the standard split; both converge fast there).
double gamma_q(double a, double x) {
  if (a <= 0.0 || x < 0.0) return 1.0;
  if (x == 0.0) return 1.0;
  const double log_prefix = -x + a * std::log(x) - std::lgamma(a);
  if (x < a + 1.0) {
    double ap = a, sum = 1.0 / a, del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-14) break;
    }
    return 1.0 - sum * std::exp(log_prefix);
  }
  double b = x + 1.0 - a, c = 1e300, d = 1.0 / b, h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-14) break;
  }
  return std::exp(log_prefix) * h;
}

struct Detector {
  std::string name;
  std::string status = "skipped";  // ok | fail | skipped
  std::string detail;              // JSON fragment: extra fields
  std::string why;                 // human-readable one-liner
};

const icc::obs::SeriesHist* find_hist(const icc::obs::SeriesWindow& w, const char* name) {
  for (const auto& [n, h] : w.hists)
    if (n == name) return &h;
  return nullptr;
}

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string series_path;
  bool check = false;
  bool quiet = false;
  size_t head_tail = 0;  // 0 = auto: max(8, windows/10)

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--head-tail") == 0 && i + 1 < argc) {
      head_tail = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (series_path.empty()) {
      series_path = argv[i];
    } else {
      return usage();
    }
  }
  if (series_path.empty()) return usage();

  std::ifstream in(series_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "icc_drift: cannot open %s\n", series_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  const icc::obs::TimeSeries::Parsed parsed = icc::obs::TimeSeries::parse_jsonl(buf.str());
  if (!parsed.has_meta) {
    std::fprintf(stderr, "icc_drift: %s: no icc-series/v1 meta line\n", series_path.c_str());
    return 2;
  }
  if (parsed.windows.empty()) {
    std::fprintf(stderr, "icc_drift: %s: no windows\n", series_path.c_str());
    return 2;
  }
  const auto& windows = parsed.windows;
  const size_t k = head_tail != 0
                       ? std::min(head_tail, windows.size() / 2)
                       : std::min(std::max<size_t>(8, windows.size() / 10),
                                  windows.size() / 2);

  std::vector<Detector> dets;

  // --- rss: Theil-Sen slope on the wall lines ---------------------------
  {
    Detector d{"rss"};
    if (parsed.wall.size() < 8) {
      d.why = parsed.meta.wall ? "fewer than 8 wall samples" : "series recorded without wall lines";
    } else {
      std::vector<std::pair<double, double>> pts;
      std::vector<double> rss;
      for (const auto& w : parsed.wall) {
        pts.emplace_back(static_cast<double>(w.seq), static_cast<double>(w.rss_kb));
        rss.push_back(static_cast<double>(w.rss_kb));
      }
      const double slope = theil_sen_slope(pts);  // kB per window
      const double span = pts.back().first - pts.front().first;
      const double projected = slope * span;      // kB growth over the run
      const double med = median(std::move(rss));
      const double band = std::max(65536.0, 0.25 * med);
      d.status = projected <= band ? "ok" : "fail";
      char why[160];
      std::snprintf(why, sizeof(why),
                    "slope %.3f kB/window, projected %+.0f kB over %zu windows (band %.0f kB)",
                    slope, projected, parsed.wall.size(), band);
      d.why = why;
      d.detail = ",\"slope_kb_per_window\":" + num(slope) +
                 ",\"projected_growth_kb\":" + num(projected) +
                 ",\"median_rss_kb\":" + num(med) + ",\"band_kb\":" + num(band);
    }
    dets.push_back(std::move(d));
  }

  // --- latency: head-k vs tail-k percentile creep -----------------------
  {
    Detector d{"latency"};
    std::vector<double> p50s, p99s;
    for (const auto& w : windows)
      if (const auto* h = find_hist(w, "consensus.finalize_us"); h && h->count > 0) {
        p50s.push_back(static_cast<double>(h->p50));
        p99s.push_back(static_cast<double>(h->p99));
      }
    if (p50s.size() < 16) {
      d.why = "fewer than 16 windows with finalize_us samples";
    } else {
      const size_t kk = std::min(k, p50s.size() / 2);
      auto head_tail_median = [&](const std::vector<double>& v) {
        return std::make_pair(
            median({v.begin(), v.begin() + static_cast<ptrdiff_t>(kk)}),
            median({v.end() - static_cast<ptrdiff_t>(kk), v.end()}));
      };
      const auto [h50, t50] = head_tail_median(p50s);
      const auto [h99, t99] = head_tail_median(p99s);
      const bool creep50 = t50 > h50 * 1.25 && t50 - h50 > 1000.0;
      const bool creep99 = t99 > h99 * 1.25 && t99 - h99 > 1000.0;
      d.status = (creep50 || creep99) ? "fail" : "ok";
      char why[160];
      std::snprintf(why, sizeof(why),
                    "p50 %.0f->%.0f us, p99 %.0f->%.0f us over first/last %zu windows",
                    h50, t50, h99, t99, kk);
      d.why = why;
      d.detail = ",\"head_p50_us\":" + num(h50) + ",\"tail_p50_us\":" + num(t50) +
                 ",\"head_p99_us\":" + num(h99) + ",\"tail_p99_us\":" + num(t99) +
                 ",\"k\":" + std::to_string(kk);
    }
    dets.push_back(std::move(d));
  }

  // --- leaders: chi-square uniformity over honest-leader counts ---------
  {
    Detector d{"leaders"};
    const std::set<uint32_t> corrupt(parsed.meta.corrupt.begin(), parsed.meta.corrupt.end());
    std::vector<uint64_t> counts(static_cast<size_t>(parsed.meta.n), 0);
    for (const auto& w : windows)
      for (const auto& [party, c] : w.leaders)
        if (party < counts.size()) counts[party] += c;
    std::vector<double> honest;
    double total = 0;
    for (uint32_t p = 0; p < counts.size(); ++p)
      if (corrupt.find(p) == corrupt.end()) {
        honest.push_back(static_cast<double>(counts[p]));
        total += static_cast<double>(counts[p]);
      }
    if (honest.size() < 2 || total < 1000.0) {
      d.why = "fewer than 1000 honest-leader rounds";
    } else {
      // The beacon permutes uniformly over ALL n slots, so each honest slot
      // expects total/|honest| of the rounds led by honest parties.
      const double expect = total / static_cast<double>(honest.size());
      double chi2 = 0;
      for (double c : honest) chi2 += (c - expect) * (c - expect) / expect;
      const double df = static_cast<double>(honest.size() - 1);
      const double p = gamma_q(df / 2.0, chi2 / 2.0);
      d.status = p < 1e-3 ? "fail" : "ok";
      char why[160];
      std::snprintf(why, sizeof(why),
                    "chi2 %.2f (df %.0f) over %.0f rounds, p=%.3g",
                    chi2, df, total, p);
      d.why = why;
      d.detail = ",\"chi2\":" + num(chi2) + ",\"df\":" + num(df) +
                 ",\"rounds\":" + num(total) + ",\"p_value\":" + num(p);
    }
    dets.push_back(std::move(d));
  }

  // --- finalize_gap: head vs tail mean-gap trend ------------------------
  {
    Detector d{"finalize_gap"};
    std::vector<double> means;
    for (const auto& w : windows)
      if (const auto* h = find_hist(w, "consensus.finalize_gap_rounds"); h && h->count > 0)
        means.push_back(static_cast<double>(h->sum) / static_cast<double>(h->count));
    if (means.size() < 16) {
      d.why = "fewer than 16 windows with finalize_gap samples";
    } else {
      const size_t kk = std::min(k, means.size() / 2);
      const double head = median({means.begin(), means.begin() + static_cast<ptrdiff_t>(kk)});
      const double tail = median({means.end() - static_cast<ptrdiff_t>(kk), means.end()});
      d.status = (tail > head * 1.5 && tail - head > 0.5) ? "fail" : "ok";
      char why[160];
      std::snprintf(why, sizeof(why), "mean gap %.2f -> %.2f rounds over first/last %zu windows",
                    head, tail, kk);
      d.why = why;
      d.detail = ",\"head_mean\":" + num(head) + ",\"tail_mean\":" + num(tail) +
                 ",\"k\":" + std::to_string(kk);
    }
    dets.push_back(std::move(d));
  }

  // --- report -----------------------------------------------------------
  std::vector<std::string> failed;
  for (const auto& d : dets)
    if (d.status == "fail") failed.push_back(d.name);

  std::string json = "{\"schema\":\"icc-drift/v1\",\"source\":\"" + series_path +
                     "\",\"protocol\":\"" + parsed.meta.protocol +
                     "\",\"seed\":" + std::to_string(parsed.meta.seed) +
                     ",\"windows\":" + std::to_string(windows.size()) +
                     ",\"wall_samples\":" + std::to_string(parsed.wall.size()) +
                     ",\"detectors\":{";
  for (size_t i = 0; i < dets.size(); ++i) {
    if (i) json += ",";
    json += "\"" + dets[i].name + "\":{\"status\":\"" + dets[i].status + "\"" +
            dets[i].detail + "}";
  }
  json += "},\"failed\":[";
  for (size_t i = 0; i < failed.size(); ++i) {
    if (i) json += ",";
    json += "\"" + failed[i] + "\"";
  }
  json += "]}";
  std::printf("%s\n", json.c_str());

  if (!quiet) {
    std::fprintf(stderr, "icc_drift: %s — %zu windows, %zu wall samples (%s, n=%u, seed %llu)\n",
                 series_path.c_str(), windows.size(), parsed.wall.size(),
                 parsed.meta.protocol.c_str(), parsed.meta.n,
                 static_cast<unsigned long long>(parsed.meta.seed));
    for (const auto& d : dets)
      std::fprintf(stderr, "  %-13s %-7s %s\n", d.name.c_str(), d.status.c_str(),
                   d.why.c_str());
  }

  if (check && !failed.empty()) {
    std::string names;
    for (const auto& f : failed) names += (names.empty() ? "" : ", ") + f;
    std::fprintf(stderr, "icc_drift: CHECK FAILED: %s\n", names.c_str());
    return 1;
  }
  return 0;
}
