// icc_runtime: offline analyzer for icc-runtime/v1 wall-clock profiles.
//
// Reads a JSON report produced by the obs::RuntimeProfiler (harness::Cluster
// with ClusterOptions::obs.runtime, or examples/icc_observe --runtime) and
// prints the parallel-efficiency analysis: per-worker utilization, the
// single-run serial fraction with its Amdahl-law projected max speedup, the
// lock-contention hot-list (site × total wait × holders) and the top-k task
// kinds by exclusive wall time.
//
//   icc_runtime <runtime.json> [--top <k>] [--check] [--quiet]
//
// --check additionally asserts the analysis is sane (serial fraction in
// (0, 1], utilization in (0, 1], positive wall time) — the CI smoke gate.
//
// Exit status: 0 on success, 1 when --check fails, 2 on usage/I/O errors or
// malformed/truncated report input. The numbers in a report are wall-clock
// and NON-DETERMINISTIC (obs/runtime.hpp): comparing them across runs or
// thread counts measures the machine, not the code.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/runtime.hpp"

namespace {

int usage() {
  std::fprintf(stderr, "usage: icc_runtime <runtime.json> [--top <k>] [--check] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_path;
  size_t top_k = 5;
  bool check = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_k = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (report_path.empty()) {
      report_path = argv[i];
    } else {
      return usage();
    }
  }
  if (report_path.empty()) return usage();

  std::ifstream in(report_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "icc_runtime: cannot open %s\n", report_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string error;
  auto report = icc::obs::parse_runtime_report(buf.str(), &error);
  if (!report) {
    std::fprintf(stderr, "icc_runtime: malformed report: %s\n", error.c_str());
    return 2;
  }

  const icc::obs::RuntimeAnalysis analysis = icc::obs::analyze_runtime(*report);

  if (!quiet) {
    icc::obs::print_runtime_summary(stdout, *report, analysis);

    // Top-k task kinds by exclusive wall time, summed over workers.
    struct Top {
      icc::obs::TaskKind kind;
      icc::obs::TaskAgg total;
    };
    std::vector<Top> tops;
    for (size_t k = 0; k < icc::obs::kTaskKinds; ++k) {
      Top t{static_cast<icc::obs::TaskKind>(k), {}};
      for (const auto& w : report->workers) {
        const auto& agg = w.tasks[k];
        t.total.count += agg.count;
        t.total.total_ns += agg.total_ns;
        t.total.exclusive_ns += agg.exclusive_ns;
        t.total.max_ns = std::max(t.total.max_ns, agg.max_ns);
      }
      if (t.total.count > 0) tops.push_back(t);
    }
    std::sort(tops.begin(), tops.end(), [](const Top& a, const Top& b) {
      return a.total.exclusive_ns > b.total.exclusive_ns;
    });
    if (tops.size() > top_k) tops.resize(top_k);
    std::printf("top task kinds by exclusive wall time:\n");
    for (const Top& t : tops) {
      std::printf("  %-16s %10llu spans  excl %9.3f ms  incl %9.3f ms  max %7.3f ms\n",
                  icc::obs::task_kind_name(t.kind),
                  static_cast<unsigned long long>(t.total.count),
                  static_cast<double>(t.total.exclusive_ns) * 1e-6,
                  static_cast<double>(t.total.total_ns) * 1e-6,
                  static_cast<double>(t.total.max_ns) * 1e-6);
    }
    std::printf("amdahl projection: S(2)=%.2fx S(4)=%.2fx S(8)=%.2fx S(inf)=%.2fx "
                "(parallel-region share %.0f%%)\n",
                analysis.projected_speedup(2), analysis.projected_speedup(4),
                analysis.projected_speedup(8), analysis.amdahl_max,
                analysis.parallel_region_share * 100.0);
    if (report->has_intern) {
      std::printf("intern (physical, non-deterministic): parses %llu, decode hits %llu, "
                  "real verifications %llu, memo hits %llu, primed %llu\n",
                  static_cast<unsigned long long>(report->intern_parses),
                  static_cast<unsigned long long>(report->intern_decode_hits),
                  static_cast<unsigned long long>(report->intern_real_verifications),
                  static_cast<unsigned long long>(report->intern_memo_hits),
                  static_cast<unsigned long long>(report->intern_primed));
    }
    if (report->rss_kb >= 0) {
      std::printf("rss: %lld kB (peak %lld kB), defer high-water %llu\n",
                  static_cast<long long>(report->rss_kb),
                  static_cast<long long>(report->peak_rss_kb),
                  static_cast<unsigned long long>(report->defer_high_water));
    }
  }

  if (check) {
    const bool ok = report->wall_ns > 0 && analysis.serial_fraction > 0.0 &&
                    analysis.serial_fraction <= 1.0 && analysis.utilization > 0.0 &&
                    analysis.utilization <= 1.0 && !report->workers.empty();
    if (!ok) {
      std::fprintf(stderr,
                   "icc_runtime: check FAILED (wall_ns=%lld serial=%.6f util=%.6f "
                   "workers=%zu)\n",
                   static_cast<long long>(report->wall_ns), analysis.serial_fraction,
                   analysis.utilization, report->workers.size());
      return 1;
    }
    if (!quiet) std::printf("check OK: serial fraction %.4f in (0,1]\n", analysis.serial_fraction);
  }
  return 0;
}
